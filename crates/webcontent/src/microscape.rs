//! The "Microscape" synthetic test site.
//!
//! The paper merged the Netscape and Microsoft home pages into one test
//! page: 42 KB of HTML with 42 inlined GIFs totalling ~125 KB. The
//! published size histogram: 19 images under 1 KB, 7 between 1–2 KB, 6
//! between 2–3 KB, the rest larger with the biggest around 40 KB; 40
//! static images total 103,299 bytes and 2 animations total 24,988 bytes,
//! with over half the data in one large image plus the animations.
//!
//! [`Microscape::generate`] reproduces that inventory with real encoded
//! GIFs (sizes calibrated within a few percent) and deterministic content,
//! and exposes the variants the paper's experiments need: lowercase-tag
//! HTML, a pre-deflated HTML entity, and the CSS-converted page.

use crate::css::ReplacementAnalysis;
use crate::gif;
use crate::html;
use crate::synth::{self, ImageRole};
use std::sync::OnceLock;

/// A fixed virtual "last modified" calendar date for every object:
/// 1 June 1997 00:00:00 GMT, just before the paper's publication.
pub const SITE_MTIME: u64 = 865_123_200;

/// One servable object.
#[derive(Debug, Clone)]
pub struct SiteObject {
    /// Request path, e.g. `/images/nav03.gif`.
    pub path: String,
    /// MIME type for the `Content-Type` header.
    pub content_type: &'static str,
    /// Encoded object bytes (GIF data or HTML).
    pub body: Vec<u8>,
    /// `None` for the HTML page itself.
    pub role: Option<ImageRole>,
    /// Text the image depicts (for CSS replacement of banners).
    pub label: String,
    /// Modification time (epoch seconds) for validators.
    pub mtime: u64,
}

/// The generated site.
#[derive(Debug, Clone)]
pub struct Microscape {
    /// The page markup (mixed-case tags, as 1997 tools produced).
    pub html: String,
    /// The 42 images in document order.
    pub images: Vec<SiteObject>,
}

/// Specification of one image: (file name, label, role, target GIF bytes).
struct ImageSpec {
    name: &'static str,
    label: &'static str,
    role: ImageRole,
    target: usize,
}

/// The 40 static images. Targets sum to 103,299 bytes (the paper's static
/// total); the histogram matches: 19 < 1 KB, 7 in 1–2 KB, 6 in 2–3 KB,
/// 8 larger with a 40 KB maximum.
const STATIC_SPECS: [ImageSpec; 40] = [
    // 19 small images (< 1 KB): banners, bullets, spacers, rules, tiny icons.
    ImageSpec {
        name: "dot_clear.gif",
        label: "",
        role: ImageRole::Spacer,
        target: 70,
    },
    ImageSpec {
        name: "bullet1.gif",
        label: "",
        role: ImageRole::Bullet,
        target: 120,
    },
    ImageSpec {
        name: "bullet2.gif",
        label: "",
        role: ImageRole::Bullet,
        target: 160,
    },
    ImageSpec {
        name: "rule_gold.gif",
        label: "",
        role: ImageRole::Rule,
        target: 200,
    },
    ImageSpec {
        name: "arrow_r.gif",
        label: "",
        role: ImageRole::Bullet,
        target: 240,
    },
    ImageSpec {
        name: "spacer2.gif",
        label: "",
        role: ImageRole::Spacer,
        target: 280,
    },
    ImageSpec {
        name: "new_flash.gif",
        label: "new!",
        role: ImageRole::TextBanner,
        target: 320,
    },
    ImageSpec {
        name: "go.gif",
        label: "go",
        role: ImageRole::TextBanner,
        target: 360,
    },
    ImageSpec {
        name: "search.gif",
        label: "search",
        role: ImageRole::TextBanner,
        target: 400,
    },
    ImageSpec {
        name: "help.gif",
        label: "help",
        role: ImageRole::TextBanner,
        target: 440,
    },
    ImageSpec {
        name: "news.gif",
        label: "news",
        role: ImageRole::TextBanner,
        target: 480,
    },
    ImageSpec {
        name: "products.gif",
        label: "products",
        role: ImageRole::TextBanner,
        target: 520,
    },
    ImageSpec {
        name: "download.gif",
        label: "download",
        role: ImageRole::TextBanner,
        target: 560,
    },
    ImageSpec {
        name: "support.gif",
        label: "support",
        role: ImageRole::TextBanner,
        target: 620,
    },
    ImageSpec {
        name: "solutions.gif",
        label: "solutions",
        role: ImageRole::TextBanner,
        target: 682,
    },
    ImageSpec {
        name: "partners.gif",
        label: "partners",
        role: ImageRole::TextBanner,
        target: 740,
    },
    ImageSpec {
        name: "icon_doc.gif",
        label: "",
        role: ImageRole::Icon,
        target: 800,
    },
    ImageSpec {
        name: "icon_folder.gif",
        label: "",
        role: ImageRole::Icon,
        target: 860,
    },
    ImageSpec {
        name: "icon_mail.gif",
        label: "",
        role: ImageRole::Icon,
        target: 918,
    },
    // 7 images of 1–2 KB: navigation art.
    ImageSpec {
        name: "nav_home.gif",
        label: "",
        role: ImageRole::Icon,
        target: 1_100,
    },
    ImageSpec {
        name: "nav_dev.gif",
        label: "",
        role: ImageRole::Icon,
        target: 1_250,
    },
    ImageSpec {
        name: "nav_store.gif",
        label: "",
        role: ImageRole::Icon,
        target: 1_400,
    },
    ImageSpec {
        name: "nav_intl.gif",
        label: "",
        role: ImageRole::Icon,
        target: 1_550,
    },
    ImageSpec {
        name: "logo_corner.gif",
        label: "",
        role: ImageRole::Icon,
        target: 1_700,
    },
    ImageSpec {
        name: "toolbar_l.gif",
        label: "",
        role: ImageRole::Icon,
        target: 1_850,
    },
    ImageSpec {
        name: "toolbar_r.gif",
        label: "",
        role: ImageRole::Icon,
        target: 1_950,
    },
    // 6 images of 2–3 KB: larger artwork.
    ImageSpec {
        name: "masthead_l.gif",
        label: "",
        role: ImageRole::Photo,
        target: 2_100,
    },
    ImageSpec {
        name: "masthead_r.gif",
        label: "",
        role: ImageRole::Photo,
        target: 2_300,
    },
    ImageSpec {
        name: "promo_box1.gif",
        label: "",
        role: ImageRole::Photo,
        target: 2_500,
    },
    ImageSpec {
        name: "promo_box2.gif",
        label: "",
        role: ImageRole::Photo,
        target: 2_600,
    },
    ImageSpec {
        name: "promo_box3.gif",
        label: "",
        role: ImageRole::Photo,
        target: 2_800,
    },
    ImageSpec {
        name: "sidebar_art.gif",
        label: "",
        role: ImageRole::Photo,
        target: 2_880,
    },
    // 8 larger images; the 40 KB splash dominates.
    ImageSpec {
        name: "feature1.gif",
        label: "",
        role: ImageRole::Photo,
        target: 3_100,
    },
    ImageSpec {
        name: "feature2.gif",
        label: "",
        role: ImageRole::Photo,
        target: 3_300,
    },
    ImageSpec {
        name: "feature3.gif",
        label: "",
        role: ImageRole::Photo,
        target: 3_600,
    },
    ImageSpec {
        name: "banner_ad1.gif",
        label: "",
        role: ImageRole::Photo,
        target: 3_900,
    },
    ImageSpec {
        name: "banner_ad2.gif",
        label: "",
        role: ImageRole::Photo,
        target: 4_200,
    },
    ImageSpec {
        name: "screenshot.gif",
        label: "",
        role: ImageRole::Photo,
        target: 4_500,
    },
    ImageSpec {
        name: "product_shot.gif",
        label: "",
        role: ImageRole::Photo,
        target: 5_969,
    },
    ImageSpec {
        name: "splash_main.gif",
        label: "",
        role: ImageRole::Photo,
        target: 40_000,
    },
];

/// The paper's published totals, used by calibration checks.
pub const PAPER_STATIC_GIF_BYTES: usize = 103_299;
/// The PAPER ANIMATION GIF BYTES.
pub const PAPER_ANIMATION_GIF_BYTES: usize = 24_988;
/// Target HTML size: "typical HTML totaling 42KB".
pub const PAPER_HTML_BYTES: usize = 43_008;

fn synthesize_static(spec: &ImageSpec, seed: u64) -> Vec<u8> {
    let img = match spec.role {
        ImageRole::Spacer => {
            // Spacers are tiny; size scales with width only a little, so
            // grow dimensions until close to target.
            let mut best = synth::spacer(1, 1);
            for w in [1u32, 8, 16, 32, 64, 120, 200, 400, 640] {
                let cand = synth::spacer(w, (w / 8).max(1));
                if gif::encode(&cand).len() <= spec.target {
                    best = cand;
                } else {
                    break;
                }
            }
            best
        }
        ImageRole::Bullet => {
            let mut best = synth::bullet(6, seed);
            for d in 6..60u32 {
                let cand = synth::bullet(d, seed);
                if gif::encode(&cand).len() <= spec.target {
                    best = cand;
                } else {
                    break;
                }
            }
            best
        }
        ImageRole::Rule => {
            let mut best = synth::rule(40, 3);
            for w in (40..=640u32).step_by(20) {
                let cand = synth::rule(w, 4);
                if gif::encode(&cand).len() <= spec.target {
                    best = cand;
                } else {
                    break;
                }
            }
            best
        }
        ImageRole::TextBanner => {
            // Banner size tracks its area; search widths.
            let mut best = synth::banner(24, 16, seed);
            for w in (24..=400u32).step_by(8) {
                let cand = synth::banner(w, 22, seed);
                if gif::encode(&cand).len() <= spec.target {
                    best = cand;
                } else {
                    break;
                }
            }
            best
        }
        ImageRole::Icon => {
            // Icon art: structured graphic sized so the target falls
            // inside the detail knob's range, then calibrated.
            let (w, h) = dims_for_target(spec.target, 1.6);
            let (img, _) =
                synth::fit_to_gif_size(spec.target, 0.02, |d| synth::graphic(w, h, 16, d, seed));
            img
        }
        ImageRole::Photo => {
            let (w, h) = dims_for_target(spec.target, 1.5);
            let (img, _) =
                synth::fit_to_gif_size(spec.target, 0.02, |d| synth::graphic(w, h, 64, d, seed));
            img
        }
        ImageRole::Animation => unreachable!("animations handled separately"),
    };
    gif::encode(&img)
}

/// Pick dimensions whose encodable size range brackets `target` bytes:
/// roughly 2 pixels of area per target byte (flat art encodes near
/// 0.1 B/px, busy art near 1 B/px, so the knob spans the target).
fn dims_for_target(target: usize, aspect: f64) -> (u32, u32) {
    let area = (target as f64 * 2.0).max(256.0);
    let w = (area * aspect).sqrt().round().max(16.0) as u32;
    let h = ((area / w as f64).round() as u32).max(12);
    (w, h)
}

fn synthesize_animations() -> Vec<SiteObject> {
    // Two animations totalling ~24,988 bytes; the larger dominates.
    let specs = [
        ("anim_globe.gif", 140u32, 105u32, 13usize, 21u64),
        ("anim_new.gif", 112, 84, 8, 22),
    ];
    specs
        .iter()
        .map(|&(name, w, h, frames, seed)| {
            let anim = synth::animation(w, h, frames, seed);
            let body = gif::encode_animation(&anim);
            SiteObject {
                path: format!("/images/{name}"),
                content_type: "image/gif",
                body,
                role: Some(ImageRole::Animation),
                label: String::new(),
                mtime: SITE_MTIME,
            }
        })
        .collect()
}

fn build_html(images: &[SiteObject]) -> String {
    let mut page = String::with_capacity(PAPER_HTML_BYTES + 4096);
    page.push_str("<HTML>\n<HEAD>\n<TITLE>Microscape - Welcome to the Web</TITLE>\n</HEAD>\n");
    page.push_str("<BODY BGCOLOR=\"#FFFFFF\" TEXT=\"#000000\" LINK=\"#0000EE\">\n");

    // Navigation table with the first batch of images, like real 1997
    // home pages.
    page.push_str("<TABLE BORDER=0 CELLPADDING=0 CELLSPACING=0 WIDTH=600>\n<TR>\n");
    for (i, obj) in images.iter().enumerate() {
        if i % 6 == 0 && i > 0 {
            page.push_str("</TR>\n<TR>\n");
        }
        let dims = dims_hint(i);
        page.push_str(&format!(
            "<TD ALIGN=LEFT VALIGN=TOP><A HREF=\"/page{}.html\"><IMG SRC=\"{}\" {} BORDER=0 ALT=\"{}\"></A></TD>\n",
            i,
            obj.path,
            dims,
            if obj.label.is_empty() { "art" } else { &obj.label },
        ));
    }
    page.push_str("</TR>\n</TABLE>\n");

    // Body copy: varied prose with links. Vocabulary is mixed
    // deterministically so the page deflates like real 1997 HTML
    // (roughly 3:1), not like pathological repetition.
    let subjects = [
        "The network",
        "Our platform",
        "The new release",
        "Every intranet",
        "The developer kit",
        "This quarter's update",
        "The component model",
        "Our partner program",
        "The enterprise suite",
        "The browser",
        "The style sheet engine",
        "Our server family",
        "The protocol stack",
        "The graphics library",
        "Every workgroup",
        "The road map",
    ];
    let verbs = [
        "delivers",
        "accelerates",
        "simplifies",
        "transforms",
        "extends",
        "integrates",
        "streamlines",
        "redefines",
        "empowers",
        "connects",
        "consolidates",
        "automates",
        "secures",
        "scales",
    ];
    let objects = [
        "mission-critical publishing for distributed teams",
        "rich multimedia across heterogeneous desktops",
        "document workflow on open standards",
        "legacy data through a unified gateway",
        "collaborative authoring over the public Internet",
        "high-volume commerce with transactional integrity",
        "cross-platform deployment without plug-ins",
        "dynamic content from relational back ends",
        "personalized channels for every subscriber",
        "secure messaging between trading partners",
        "real-time quotes and custom portfolios",
        "searchable archives of technical notes",
        "global mirrors with automatic failover",
    ];
    let tails = [
        "Evaluation copies ship this week",
        "White papers and benchmarks are online now",
        "Registration is free for members of the program",
        "See the technical backgrounder for deployment details",
        "Training seminars begin in twelve cities this fall",
        "Analysts call it the category's defining product",
        "Localized editions cover nine languages at launch",
    ];
    // Early commerce sites carried per-session tokens in their URLs;
    // they give the page the byte entropy real 42 KB pages had (the
    // paper's corpus deflates ~3:1, not 10:1).
    let mut sid = 0x1234_5678_9abc_def0u64;
    let mut token = |n: usize| -> String {
        let mut t = String::new();
        for _ in 0..n {
            sid = sid
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            t.push_str(&format!("{:04x}", (sid >> 48) as u16));
        }
        t
    };
    // Hand-maintained 1997 pages mixed tag case freely; the paper's
    // tag-case compression study (.27 lowercase vs .35 mixed) relies on
    // exactly this inconsistency.
    let case_styles = [
        ("P", "A", "HREF"),
        ("p", "a", "href"),
        ("P", "a", "Href"),
        ("p", "A", "HREF"),
    ];
    let mut i = 0usize;
    while page.len() + 330 < PAPER_HTML_BYTES {
        let (tp, ta, thref) = case_styles[i % case_styles.len()];
        page.push_str(&format!(
            "<{tp}>{} {} {}. {}. <{ta} {thref}=\"/s{}/{}.html?sid={}\">Details</{ta}> | \
             <{ta} {thref}=\"/press/q{}/{}.html?sid={}\">Press</{ta}></{tp}>\n",
            subjects[i % subjects.len()],
            verbs[(i * 5 + 3) % verbs.len()],
            objects[(i * 7 + 1) % objects.len()],
            tails[(i * 11 + 2) % tails.len()],
            i % 9,
            (i * 13 + 7) % 97,
            token(6),
            i % 4 + 1,
            (i * 17 + 5) % 89,
            token(6),
        ));
        i += 1;
    }
    // Pad with a varied comment block to land near the target size.
    page.push_str("<!-- build: ");
    let mut k = 0u64;
    while page.len() + 16 < PAPER_HTML_BYTES {
        // Deterministic mixed tokens, not a run of one character.
        k = k
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        page.push_str(&format!("{:04x}", (k >> 48) as u16));
        page.push(if k % 3 == 0 { '-' } else { ' ' });
    }
    page.push_str("-->\n");
    page.push_str("</BODY></HTML>\n");
    // Exactness to the byte is not required (the paper says "42KB"), but
    // stay within a whisker.
    debug_assert!(
        (page.len() as i64 - PAPER_HTML_BYTES as i64).abs() < 64,
        "html size {} vs target {}",
        page.len(),
        PAPER_HTML_BYTES
    );
    page
}

fn dims_hint(i: usize) -> String {
    // Plausible WIDTH/HEIGHT attributes; exact values are cosmetic.
    let w = 40 + (i * 13) % 200;
    let h = 20 + (i * 7) % 60;
    format!("WIDTH={w} HEIGHT={h}")
}

impl Microscape {
    /// Generate the full site deterministically. This is moderately
    /// expensive (it encodes and calibrates 42 GIFs); use [`site`] for a
    /// cached instance.
    pub fn generate() -> Microscape {
        let mut images: Vec<SiteObject> = STATIC_SPECS
            .iter()
            .enumerate()
            .map(|(i, spec)| SiteObject {
                path: format!("/images/{}", spec.name),
                content_type: "image/gif",
                body: synthesize_static(spec, 0x5EED_0000 + i as u64),
                role: Some(spec.role),
                label: spec.label.to_string(),
                mtime: SITE_MTIME,
            })
            .collect();
        images.extend(synthesize_animations());
        let html = build_html(&images);
        Microscape { html, images }
    }

    /// The page path.
    pub fn html_path(&self) -> &'static str {
        "/index.html"
    }

    /// Look up an object (including the HTML page) by path.
    pub fn object(&self, path: &str) -> Option<SiteObject> {
        if path == self.html_path() || path == "/" {
            return Some(SiteObject {
                path: self.html_path().to_string(),
                content_type: "text/html",
                body: self.html.clone().into_bytes(),
                role: None,
                label: String::new(),
                mtime: SITE_MTIME,
            });
        }
        self.images.iter().find(|o| o.path == path).cloned()
    }

    /// All request paths in browse order: the page, then its images as
    /// they appear in the markup.
    pub fn browse_order(&self) -> Vec<String> {
        let mut v = vec![self.html_path().to_string()];
        v.extend(html::inline_image_sources(&self.html));
        v
    }

    /// Total bytes of the 40 static GIFs.
    pub fn static_image_bytes(&self) -> usize {
        self.images
            .iter()
            .filter(|o| o.role != Some(ImageRole::Animation))
            .map(|o| o.body.len())
            .sum()
    }

    /// Total bytes of the 2 animations.
    pub fn animation_bytes(&self) -> usize {
        self.images
            .iter()
            .filter(|o| o.role == Some(ImageRole::Animation))
            .map(|o| o.body.len())
            .sum()
    }

    /// Histogram of static image sizes: (<1 KB, 1–2 KB, 2–3 KB, ≥3 KB).
    pub fn size_histogram(&self) -> (usize, usize, usize, usize) {
        let mut h = (0, 0, 0, 0);
        for o in &self.images {
            if o.role == Some(ImageRole::Animation) {
                continue;
            }
            match o.body.len() {
                0..=999 => h.0 += 1,
                1_000..=1_999 => h.1 += 1,
                2_000..=2_999 => h.2 += 1,
                _ => h.3 += 1,
            }
        }
        h
    }

    /// The HTML rewritten with all-lowercase tags (compression variant).
    pub fn html_lowercase(&self) -> String {
        html::rewrite_tag_case(&self.html, false)
    }

    /// Build the CSS-converted variant of the page: every replaceable
    /// image (banners, bullets, spacers, rules) becomes inline HTML styled
    /// by a shared `<STYLE>` block; photos, icons and animations remain
    /// `<IMG>` references. Returns the new markup and the objects a
    /// browser would still fetch.
    pub fn css_variant(&self) -> CssVariant {
        use crate::css;
        use crate::html::{attr_value, serialize, tokenize, HtmlToken};

        let analysis = self.css_analysis();
        let mut rules = Vec::new();
        let mut markup_for: std::collections::HashMap<String, String> =
            std::collections::HashMap::new();
        for (i, item) in analysis.items.iter().enumerate() {
            if !item.replaced {
                continue;
            }
            let class = format!("c{i}");
            let label = self
                .images
                .iter()
                .find(|o| o.path == item.path)
                .map(|o| o.label.clone())
                .unwrap_or_default();
            if let (Some(rule), Some(markup)) = (
                css::replacement_rule(item.role, &class),
                css::replacement_markup(item.role, &class, &label),
            ) {
                rules.push(rule);
                markup_for.insert(item.path.clone(), markup);
            }
        }
        let sheet = css::serialize(&css::Stylesheet { rules });

        let mut tokens = tokenize(&self.html);
        for t in &mut tokens {
            if let HtmlToken::Tag {
                name,
                attrs,
                closing,
            } = t
            {
                if !*closing && name.eq_ignore_ascii_case("head") {
                    continue;
                }
                if !*closing && name.eq_ignore_ascii_case("img") {
                    if let Some(src) = attr_value(attrs, "src") {
                        if let Some(markup) = markup_for.get(src) {
                            *t = HtmlToken::Text(markup.clone());
                        }
                    }
                }
            }
        }
        let mut html = serialize(&tokens);
        // Install the shared stylesheet at the end of <HEAD>.
        let style_block = format!("<STYLE TYPE=\"text/css\">{sheet}</STYLE>");
        if let Some(pos) = html.find("</HEAD>") {
            html.insert_str(pos, &style_block);
        } else {
            html.insert_str(0, &style_block);
        }

        let kept: Vec<SiteObject> = self
            .images
            .iter()
            .filter(|o| !markup_for.contains_key(&o.path))
            .cloned()
            .collect();
        CssVariant { html, kept }
    }

    /// CSS replacement analysis over the 40 static images (the animations
    /// are kept, as in the paper).
    pub fn css_analysis(&self) -> ReplacementAnalysis {
        let items: Vec<(String, ImageRole, usize, usize, String)> = self
            .images
            .iter()
            .map(|o| {
                let role = o.role.expect("images have roles");
                // Approximate the <IMG ...> markup bytes for this object.
                let tag = format!(
                    "<IMG SRC=\"{}\" WIDTH=100 HEIGHT=30 BORDER=0 ALT=\"{}\">",
                    o.path, o.label
                );
                (
                    o.path.clone(),
                    role,
                    o.body.len(),
                    tag.len(),
                    o.label.clone(),
                )
            })
            .collect();
        ReplacementAnalysis::analyze(&items)
    }
}

/// The CSS-converted page: new markup plus the images still referenced.
#[derive(Debug, Clone)]
pub struct CssVariant {
    /// The page with inline HTML+CSS replacing decorative images.
    pub html: String,
    /// Images the converted page still embeds.
    pub kept: Vec<SiteObject>,
}

/// Cached site instance (generation encodes 42 GIFs; do it once).
pub fn site() -> &'static Microscape {
    static SITE: OnceLock<Microscape> = OnceLock::new();
    SITE.get_or_init(Microscape::generate)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inventory_matches_paper() {
        let s = site();
        assert_eq!(s.images.len(), 42, "42 inlined images");
        let statics = s.static_image_bytes();
        let anims = s.animation_bytes();
        // Within 10% of the published totals.
        let static_err =
            (statics as f64 - PAPER_STATIC_GIF_BYTES as f64).abs() / PAPER_STATIC_GIF_BYTES as f64;
        assert!(
            static_err < 0.10,
            "static bytes {statics} vs paper {PAPER_STATIC_GIF_BYTES} (err {static_err:.3})"
        );
        let anim_err = (anims as f64 - PAPER_ANIMATION_GIF_BYTES as f64).abs()
            / PAPER_ANIMATION_GIF_BYTES as f64;
        assert!(
            anim_err < 0.45,
            "animation bytes {anims} vs paper {PAPER_ANIMATION_GIF_BYTES} (err {anim_err:.3})"
        );
    }

    #[test]
    fn histogram_matches_paper() {
        let (small, mid, upper, big) = site().size_histogram();
        assert_eq!(small, 19, "19 images under 1KB");
        assert_eq!(mid, 7, "7 images of 1-2KB");
        assert_eq!(upper, 6, "6 images of 2-3KB");
        assert_eq!(big, 8);
    }

    #[test]
    fn html_is_42k() {
        let s = site();
        let err = (s.html.len() as i64 - PAPER_HTML_BYTES as i64).abs();
        assert!(err < 64, "html is {} bytes", s.html.len());
    }

    #[test]
    fn browse_order_is_43_requests() {
        let order = site().browse_order();
        assert_eq!(order.len(), 43, "1 HTML + 42 images");
        assert_eq!(order[0], "/index.html");
        assert!(order[1..].iter().all(|p| p.starts_with("/images/")));
    }

    #[test]
    fn all_objects_resolvable() {
        let s = site();
        for path in s.browse_order() {
            let obj = s.object(&path).unwrap_or_else(|| panic!("missing {path}"));
            assert!(!obj.body.is_empty());
        }
        assert!(s.object("/nonexistent.gif").is_none());
    }

    #[test]
    fn images_are_valid_gifs() {
        let s = site();
        let mut animated = 0;
        for obj in &s.images {
            let dec = crate::gif::decode(&obj.body).expect("valid gif");
            if dec.animated {
                animated += 1;
            }
        }
        assert_eq!(animated, 2);
    }

    #[test]
    fn solutions_banner_near_682_bytes() {
        let s = site();
        let obj = s.object("/images/solutions.gif").unwrap();
        let n = obj.body.len();
        assert!(
            (400..=720).contains(&n),
            "solutions.gif should be near 682 bytes, got {n}"
        );
    }

    #[test]
    fn over_half_the_bytes_in_splash_plus_animations() {
        let s = site();
        let splash = s.object("/images/splash_main.gif").unwrap().body.len();
        let total = s.static_image_bytes() + s.animation_bytes();
        assert!(
            splash + s.animation_bytes() > total / 2,
            "paper: one image + two animations hold over half the data"
        );
    }

    #[test]
    fn deterministic_generation() {
        let a = Microscape::generate();
        let b = Microscape::generate();
        assert_eq!(a.html, b.html);
        for (x, y) in a.images.iter().zip(&b.images) {
            assert_eq!(x.body, y.body, "image {} differs", x.path);
        }
    }

    #[test]
    fn html_compresses_about_three_to_one() {
        let s = site();
        let z = flate::deflate(s.html.as_bytes(), flate::Level::Default);
        let ratio = z.len() as f64 / s.html.len() as f64;
        assert!(
            ratio < 0.40,
            "42KB HTML should deflate to ~11-16KB, ratio {ratio:.3}"
        );
    }

    #[test]
    fn css_variant_page() {
        let s = site();
        let v = s.css_variant();
        assert!(v.kept.len() < 42, "some images replaced");
        assert!(v.kept.len() >= 20, "photos/icons/animations kept");
        assert!(v.html.contains("<STYLE"), "stylesheet installed");
        // The converted page references exactly the kept images.
        let srcs = crate::html::inline_image_sources(&v.html);
        assert_eq!(srcs.len(), v.kept.len());
        // Total payload (html + kept images) shrinks versus the original.
        let orig = s.html.len() + s.images.iter().map(|o| o.body.len()).sum::<usize>();
        let conv = v.html.len() + v.kept.iter().map(|o| o.body.len()).sum::<usize>();
        assert!(conv < orig);
    }

    #[test]
    fn css_analysis_shape() {
        let a = site().css_analysis();
        // Banners, bullets, spacers and rules are replaceable: 16 of 42.
        assert!(a.replaced_count() >= 12, "got {}", a.replaced_count());
        assert!(a.bytes_saved() > 5_000);
        assert!(a.requests_saved() >= 12);
    }
}
