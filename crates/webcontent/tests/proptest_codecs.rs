//! Property-style tests for the image codecs, driven by a deterministic
//! seeded PRNG (the build environment has no crates.io access, so
//! `proptest` is unavailable): GIF, PNG and MNG must roundtrip arbitrary
//! indexed images, and the decoders must never panic on arbitrary bytes.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use webcontent::image::{small_palette, Animation, Frame, IndexedImage};
use webcontent::{gif, mng, png};

fn arb_image(rng: &mut SmallRng, max_dim: u32) -> IndexedImage {
    let w = rng.gen_range(1..=max_dim);
    let h = rng.gen_range(1..=max_dim);
    let colors = rng.gen_range(2usize..=256);
    let pixels: Vec<u8> = (0..(w * h) as usize)
        .map(|_| rng.gen_range(0..colors as u16) as u8)
        .collect();
    IndexedImage {
        width: w,
        height: h,
        palette: small_palette(colors),
        pixels,
    }
}

fn random_bytes(rng: &mut SmallRng, max_len: usize) -> Vec<u8> {
    let len = rng.gen_range(0..max_len);
    (0..len).map(|_| rng.gen()).collect()
}

#[test]
fn gif_roundtrip() {
    let mut rng = SmallRng::seed_from_u64(0x0C0D_EC01);
    for case in 0..48 {
        let img = arb_image(&mut rng, 40);
        let bytes = gif::encode(&img);
        let dec = gif::decode(&bytes).expect("decode");
        assert_eq!(&dec.frames[0].image.pixels, &img.pixels, "case {case}");
        assert_eq!(dec.frames[0].image.width, img.width);
        assert_eq!(dec.frames[0].image.height, img.height);
        assert_eq!(
            &dec.frames[0].image.palette[..img.palette.len()],
            &img.palette[..]
        );
    }
}

#[test]
fn png_roundtrip() {
    let mut rng = SmallRng::seed_from_u64(0x0C0D_EC02);
    for case in 0..48 {
        let img = arb_image(&mut rng, 40);
        let bytes = png::encode(&img, png::PngOptions::default());
        let dec = png::decode(&bytes).expect("decode");
        assert_eq!(&dec.image.pixels, &img.pixels, "case {case}");
        assert_eq!(dec.image.width, img.width);
    }
}

#[test]
fn lzw_roundtrip() {
    let mut rng = SmallRng::seed_from_u64(0x0C0D_EC03);
    for _ in 0..48 {
        let data = random_bytes(&mut rng, 4096);
        let c = gif::lzw_compress(&data, 8);
        assert_eq!(gif::lzw_decompress(&c, 8).unwrap(), data);
    }
}

#[test]
fn lzw_roundtrip_small_alphabet() {
    let mut rng = SmallRng::seed_from_u64(0x0C0D_EC04);
    for _ in 0..48 {
        let len = rng.gen_range(0..4096usize);
        let data: Vec<u8> = (0..len).map(|_| rng.gen_range(0u8..4)).collect();
        let c = gif::lzw_compress(&data, 2);
        assert_eq!(gif::lzw_decompress(&c, 2).unwrap(), data);
    }
}

#[test]
fn animation_roundtrip() {
    let mut rng = SmallRng::seed_from_u64(0x0C0D_EC05);
    for case in 0..48 {
        let base = arb_image(&mut rng, 24);
        // Build frames by mutating the base image.
        let mut frames = vec![Frame {
            image: base.clone(),
            delay_cs: 5,
        }];
        let mut cur = base;
        for _ in 0..rng.gen_range(1..5usize) {
            for _ in 0..rng.gen_range(0..10usize) {
                let (x, y, c) = (
                    rng.gen_range(0u32..24),
                    rng.gen_range(0u32..24),
                    rng.gen_range(0u8..4),
                );
                if x < cur.width && y < cur.height && (c as usize) < cur.palette.len() {
                    cur.set(x, y, c);
                }
            }
            frames.push(Frame {
                image: cur.clone(),
                delay_cs: 5,
            });
        }
        let anim = Animation::new(frames.clone());

        let g = gif::encode_animation(&anim);
        let dec = gif::decode(&g).expect("gif decode");
        assert_eq!(dec.frames.len(), frames.len(), "case {case}");

        let m = mng::encode(&anim);
        let dec = mng::decode(&m).expect("mng decode");
        for (got, want) in dec.frames.iter().zip(&frames) {
            assert_eq!(&got.image.pixels, &want.image.pixels, "case {case}");
        }
    }
}

#[test]
fn decoders_never_panic() {
    let mut rng = SmallRng::seed_from_u64(0x0C0D_EC06);
    for _ in 0..48 {
        let data = random_bytes(&mut rng, 600);
        let _ = gif::decode(&data);
        let _ = png::decode(&data);
        let _ = mng::decode(&data);
    }
}

#[test]
fn decoders_never_panic_with_valid_magic() {
    let mut rng = SmallRng::seed_from_u64(0x0C0D_EC07);
    for _ in 0..48 {
        let data = random_bytes(&mut rng, 300);
        let mut g = b"GIF89a".to_vec();
        g.extend_from_slice(&data);
        let _ = gif::decode(&g);
        let mut p = png::SIGNATURE.to_vec();
        p.extend_from_slice(&data);
        let _ = png::decode(&p);
        let mut m = mng::SIGNATURE.to_vec();
        m.extend_from_slice(&data);
        let _ = mng::decode(&m);
    }
}

#[test]
fn html_tokenizer_roundtrips_arbitrary_text() {
    let mut rng = SmallRng::seed_from_u64(0x0C0D_EC08);
    for _ in 0..48 {
        let len = rng.gen_range(0..400usize);
        let text: String = (0..len)
            .map(|_| {
                if rng.gen_bool(0.05) {
                    '\n'
                } else {
                    rng.gen_range(b' '..=b'~') as char
                }
            })
            .collect();
        // Tokenize + serialize must preserve content for text without
        // tag-like structures; with them, it must at least not panic and
        // must preserve length-ish structure for well-formed tags.
        let tokens = webcontent::html::tokenize(&text);
        let round = webcontent::html::serialize(&tokens);
        if !text.contains('<') {
            assert_eq!(round, text);
        }
    }
}

#[test]
fn css_parse_serialize_fixpoint() {
    const SEL_FIRST: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz";
    const SEL_REST: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789.";
    const PROP_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz-";
    const VAL_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789# ";
    let mut rng = SmallRng::seed_from_u64(0x0C0D_EC09);
    let pick = |rng: &mut SmallRng, set: &[u8]| set[rng.gen_range(0..set.len())] as char;
    for _ in 0..48 {
        let selectors: Vec<String> = (0..rng.gen_range(1..4usize))
            .map(|_| {
                let mut s = String::new();
                s.push(pick(&mut rng, SEL_FIRST));
                for _ in 0..rng.gen_range(0..=8usize) {
                    s.push(pick(&mut rng, SEL_REST));
                }
                s
            })
            .collect();
        let props: Vec<(String, String)> = (0..rng.gen_range(1..5usize))
            .map(|_| {
                let p: String = (0..rng.gen_range(1..=12usize))
                    .map(|_| pick(&mut rng, PROP_CHARS))
                    .collect();
                let v: String = (0..rng.gen_range(1..=16usize))
                    .map(|_| pick(&mut rng, VAL_CHARS))
                    .collect();
                (p, v)
            })
            .collect();
        let mut css = String::new();
        css.push_str(&selectors.join(","));
        css.push('{');
        for (p, v) in &props {
            css.push_str(p);
            css.push(':');
            css.push_str(v.trim());
            css.push(';');
        }
        css.push('}');
        if let Ok(sheet) = webcontent::css::parse(&css) {
            let compact = webcontent::css::serialize(&sheet);
            let reparsed = webcontent::css::parse(&compact).expect("serialized css reparses");
            assert_eq!(sheet, reparsed);
        }
    }
}
