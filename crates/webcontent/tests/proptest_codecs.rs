//! Property tests for the image codecs: GIF, PNG and MNG must roundtrip
//! arbitrary indexed images, and the decoders must never panic on
//! arbitrary bytes.

use proptest::prelude::*;
use webcontent::image::{small_palette, Animation, Frame, IndexedImage};
use webcontent::{gif, mng, png};

fn arb_image(max_dim: u32) -> impl Strategy<Value = IndexedImage> {
    (1..=max_dim, 1..=max_dim, 2usize..=256).prop_flat_map(|(w, h, colors)| {
        proptest::collection::vec(0..colors as u16, (w * h) as usize).prop_map(
            move |pixels| IndexedImage {
                width: w,
                height: h,
                palette: small_palette(colors),
                pixels: pixels.into_iter().map(|p| p as u8).collect(),
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn gif_roundtrip(img in arb_image(40)) {
        let bytes = gif::encode(&img);
        let dec = gif::decode(&bytes).expect("decode");
        prop_assert_eq!(&dec.frames[0].image.pixels, &img.pixels);
        prop_assert_eq!(dec.frames[0].image.width, img.width);
        prop_assert_eq!(dec.frames[0].image.height, img.height);
        prop_assert_eq!(
            &dec.frames[0].image.palette[..img.palette.len()],
            &img.palette[..]
        );
    }

    #[test]
    fn png_roundtrip(img in arb_image(40)) {
        let bytes = png::encode(&img, png::PngOptions::default());
        let dec = png::decode(&bytes).expect("decode");
        prop_assert_eq!(&dec.image.pixels, &img.pixels);
        prop_assert_eq!(dec.image.width, img.width);
    }

    #[test]
    fn lzw_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..4096), mcs in 8u32..=8) {
        let c = gif::lzw_compress(&data, mcs);
        prop_assert_eq!(gif::lzw_decompress(&c, mcs).unwrap(), data);
    }

    #[test]
    fn lzw_roundtrip_small_alphabet(
        data in proptest::collection::vec(0u8..4, 0..4096),
    ) {
        let c = gif::lzw_compress(&data, 2);
        prop_assert_eq!(gif::lzw_decompress(&c, 2).unwrap(), data);
    }

    #[test]
    fn animation_roundtrip(
        base in arb_image(24),
        deltas in proptest::collection::vec(
            proptest::collection::vec((0u32..24, 0u32..24, 0u8..4), 0..10),
            1..5
        ),
    ) {
        // Build frames by mutating the base image.
        let mut frames = vec![Frame { image: base.clone(), delay_cs: 5 }];
        let mut cur = base;
        for edits in &deltas {
            for &(x, y, c) in edits {
                if x < cur.width && y < cur.height && (c as usize) < cur.palette.len() {
                    cur.set(x, y, c);
                }
            }
            frames.push(Frame { image: cur.clone(), delay_cs: 5 });
        }
        let anim = Animation::new(frames.clone());

        let g = gif::encode_animation(&anim);
        let dec = gif::decode(&g).expect("gif decode");
        prop_assert_eq!(dec.frames.len(), frames.len());

        let m = mng::encode(&anim);
        let dec = mng::decode(&m).expect("mng decode");
        for (got, want) in dec.frames.iter().zip(&frames) {
            prop_assert_eq!(&got.image.pixels, &want.image.pixels);
        }
    }

    #[test]
    fn decoders_never_panic(data in proptest::collection::vec(any::<u8>(), 0..600)) {
        let _ = gif::decode(&data);
        let _ = png::decode(&data);
        let _ = mng::decode(&data);
    }

    #[test]
    fn decoders_never_panic_with_valid_magic(data in proptest::collection::vec(any::<u8>(), 0..300)) {
        let mut g = b"GIF89a".to_vec();
        g.extend_from_slice(&data);
        let _ = gif::decode(&g);
        let mut p = png::SIGNATURE.to_vec();
        p.extend_from_slice(&data);
        let _ = png::decode(&p);
        let mut m = mng::SIGNATURE.to_vec();
        m.extend_from_slice(&data);
        let _ = mng::decode(&m);
    }

    #[test]
    fn html_tokenizer_roundtrips_arbitrary_text(
        text in "[ -~\n]{0,400}",
    ) {
        // Tokenize + serialize must preserve content for text without
        // tag-like structures; with them, it must at least not panic and
        // must preserve length-ish structure for well-formed tags.
        let tokens = webcontent::html::tokenize(&text);
        let round = webcontent::html::serialize(&tokens);
        if !text.contains('<') {
            prop_assert_eq!(round, text);
        }
    }

    #[test]
    fn css_parse_serialize_fixpoint(
        selectors in proptest::collection::vec("[A-Za-z][A-Za-z0-9.]{0,8}", 1..4),
        props in proptest::collection::vec(("[a-z-]{1,12}", "[a-z0-9# ]{1,16}"), 1..5),
    ) {
        let mut css = String::new();
        css.push_str(&selectors.join(","));
        css.push('{');
        for (p, v) in &props {
            css.push_str(p);
            css.push(':');
            css.push_str(v.trim());
            css.push(';');
        }
        css.push('}');
        if let Ok(sheet) = webcontent::css::parse(&css) {
            let compact = webcontent::css::serialize(&sheet);
            let reparsed = webcontent::css::parse(&compact).expect("serialized css reparses");
            prop_assert_eq!(sheet, reparsed);
        }
    }
}
