//! # httpwire — the HTTP/1.0 and HTTP/1.1 message layer
//!
//! Everything about HTTP *messages* — independent of sockets — for the
//! SIGCOMM '97 reproduction: request/response types with exact wire
//! serialization (byte counts matter: the paper's request profiles differ
//! by product), incremental pipelining-safe parsers, chunked transfer
//! coding, content codings (deflate), validators and conditional requests,
//! byte ranges, and RFC 1123 date handling.
//!
//! ```
//! use httpwire::{Method, Request, Version, ResponseParser};
//!
//! // A compact robot request, ~190 bytes like the paper's libwww client.
//! let req = Request::new(Method::Get, "/", Version::Http11)
//!     .with_header("Host", "microscape.example");
//! let wire = req.to_bytes();
//! assert!(wire.starts_with(b"GET / HTTP/1.1\r\n"));
//!
//! // The response side parses pipelined streams incrementally.
//! let mut parser = ResponseParser::new();
//! parser.expect(Method::Get);
//! parser.feed(b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nhi");
//! let resp = parser.next().unwrap().unwrap();
//! assert_eq!(&resp.body[..], b"hi");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chunked;
pub mod coding;
pub mod date;
pub mod headers;
pub mod message;
pub mod parser;
pub mod range;
pub mod types;
pub mod validators;

pub use coding::ContentCoding;
pub use date::{format_http_date, parse_http_date};
pub use headers::{Header, HeaderMap};
pub use message::{Request, Response};
pub use parser::{ParseError, RequestParser, ResponseParser};
pub use range::{parse_range_header, ByteRange};
pub use types::{Method, StatusCode, Version};
pub use validators::{evaluate_conditional, CondResult, ETag, Validators};
