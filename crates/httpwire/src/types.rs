//! Core protocol vocabulary: versions, methods and status codes.

use std::fmt;
use std::str::FromStr;

/// HTTP protocol version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Version {
    /// HTTP/1.0 (RFC 1945): one request per connection by default.
    Http10,
    /// HTTP/1.1 (RFC 2068): persistent connections by default.
    Http11,
}

impl Version {
    /// Whether connections persist after a response unless negotiated
    /// otherwise.
    pub fn persistent_by_default(self) -> bool {
        matches!(self, Version::Http11)
    }

    /// The canonical string form.
    pub fn as_str(self) -> &'static str {
        match self {
            Version::Http10 => "HTTP/1.0",
            Version::Http11 => "HTTP/1.1",
        }
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for Version {
    type Err = ();
    fn from_str(s: &str) -> Result<Self, ()> {
        match s {
            "HTTP/1.0" => Ok(Version::Http10),
            "HTTP/1.1" => Ok(Version::Http11),
            _ => Err(()),
        }
    }
}

/// Request methods used by the experiments (plus POST/PUT for
/// completeness).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Get.
    Get,
    /// Head.
    Head,
    /// Post.
    Post,
    /// Put.
    Put,
    /// Options.
    Options,
    /// Trace.
    Trace,
}

impl Method {
    /// The canonical string form.
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Head => "HEAD",
            Method::Post => "POST",
            Method::Put => "PUT",
            Method::Options => "OPTIONS",
            Method::Trace => "TRACE",
        }
    }

    /// Whether a response to this method carries a body.
    pub fn response_has_body(self) -> bool {
        !matches!(self, Method::Head)
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for Method {
    type Err = ();
    fn from_str(s: &str) -> Result<Self, ()> {
        match s {
            "GET" => Ok(Method::Get),
            "HEAD" => Ok(Method::Head),
            "POST" => Ok(Method::Post),
            "PUT" => Ok(Method::Put),
            "OPTIONS" => Ok(Method::Options),
            "TRACE" => Ok(Method::Trace),
            _ => Err(()),
        }
    }
}

/// An HTTP status code plus its canonical reason phrase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StatusCode(pub u16);

impl StatusCode {
    /// HTTP 200.
    pub const OK: StatusCode = StatusCode(200);
    /// HTTP 206.
    pub const PARTIAL_CONTENT: StatusCode = StatusCode(206);
    /// HTTP 304.
    pub const NOT_MODIFIED: StatusCode = StatusCode(304);
    /// HTTP 400.
    pub const BAD_REQUEST: StatusCode = StatusCode(400);
    /// HTTP 404.
    pub const NOT_FOUND: StatusCode = StatusCode(404);
    /// HTTP 412.
    pub const PRECONDITION_FAILED: StatusCode = StatusCode(412);
    /// HTTP 416.
    pub const RANGE_NOT_SATISFIABLE: StatusCode = StatusCode(416);
    /// HTTP 500.
    pub const INTERNAL_SERVER_ERROR: StatusCode = StatusCode(500);
    /// HTTP 501.
    pub const NOT_IMPLEMENTED: StatusCode = StatusCode(501);

    /// The canonical reason phrase.
    pub fn reason(self) -> &'static str {
        match self.0 {
            200 => "OK",
            204 => "No Content",
            206 => "Partial Content",
            301 => "Moved Permanently",
            302 => "Found",
            304 => "Not Modified",
            400 => "Bad Request",
            403 => "Forbidden",
            404 => "Not Found",
            412 => "Precondition Failed",
            416 => "Requested Range Not Satisfiable",
            500 => "Internal Server Error",
            501 => "Not Implemented",
            _ => "Unknown",
        }
    }

    /// Whether a response with this status never carries a body
    /// (1xx, 204, 304).
    pub fn bodyless(self) -> bool {
        self.0 / 100 == 1 || self.0 == 204 || self.0 == 304
    }

    /// True for 2xx status codes.
    pub fn is_success(self) -> bool {
        (200..300).contains(&self.0)
    }
}

impl fmt::Display for StatusCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.0, self.reason())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_parse_display() {
        assert_eq!("HTTP/1.1".parse::<Version>().unwrap(), Version::Http11);
        assert_eq!(Version::Http10.to_string(), "HTTP/1.0");
        assert!("HTTP/2.0".parse::<Version>().is_err());
        assert!(Version::Http11.persistent_by_default());
        assert!(!Version::Http10.persistent_by_default());
    }

    #[test]
    fn method_parse_display() {
        assert_eq!("GET".parse::<Method>().unwrap(), Method::Get);
        assert_eq!(Method::Head.to_string(), "HEAD");
        assert!(!Method::Head.response_has_body());
        assert!(Method::Get.response_has_body());
        assert!(
            "get".parse::<Method>().is_err(),
            "methods are case-sensitive"
        );
    }

    #[test]
    fn status_properties() {
        assert!(StatusCode::NOT_MODIFIED.bodyless());
        assert!(!StatusCode::OK.bodyless());
        assert!(StatusCode(204).bodyless());
        assert!(StatusCode::OK.is_success());
        assert!(!StatusCode::NOT_MODIFIED.is_success());
        assert_eq!(StatusCode::OK.to_string(), "200 OK");
        assert_eq!(StatusCode::NOT_MODIFIED.reason(), "Not Modified");
    }
}
