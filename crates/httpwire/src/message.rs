//! Request and response messages with wire serialization.

use crate::headers::HeaderMap;
use crate::types::{Method, StatusCode, Version};
use bytes::Bytes;

/// An HTTP request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Request method.
    pub method: Method,
    /// Request-target (origin-form path).
    pub target: String,
    /// Protocol version on the wire.
    pub version: Version,
    /// Header block, order-preserving.
    pub headers: HeaderMap,
    /// Entity body (empty when none).
    pub body: Bytes,
}

impl Request {
    /// Create a new, empty instance.
    pub fn new(method: Method, target: impl Into<String>, version: Version) -> Self {
        Request {
            method,
            target: target.into(),
            version,
            headers: HeaderMap::new(),
            body: Bytes::new(),
        }
    }

    /// Builder-style header append.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Self {
        self.headers.append(name, value);
        self
    }

    /// Serialize onto the wire. A `Content-Length` header is added
    /// automatically when a body is present and none was set.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.headers.wire_len() + self.body.len());
        out.extend_from_slice(self.method.as_str().as_bytes());
        out.push(b' ');
        out.extend_from_slice(self.target.as_bytes());
        out.push(b' ');
        out.extend_from_slice(self.version.as_str().as_bytes());
        out.extend_from_slice(b"\r\n");
        self.headers.write_to(&mut out);
        if !self.body.is_empty() && !self.headers.contains("Content-Length") {
            out.extend_from_slice(format!("Content-Length: {}\r\n", self.body.len()).as_bytes());
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out
    }

    /// Size on the wire.
    pub fn wire_len(&self) -> usize {
        self.to_bytes().len()
    }

    /// Whether the sender wants the connection kept open after this
    /// request (HTTP/1.1 default-persistent semantics, HTTP/1.0
    /// `Connection: keep-alive` opt-in).
    pub fn wants_keep_alive(&self) -> bool {
        if self.headers.has_token("Connection", "close") {
            return false;
        }
        self.version.persistent_by_default() || self.headers.has_token("Connection", "keep-alive")
    }
}

/// An HTTP response.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Protocol version on the wire.
    pub version: Version,
    /// Status code and reason.
    pub status: StatusCode,
    /// Header block, order-preserving.
    pub headers: HeaderMap,
    /// Entity body (empty when none).
    pub body: Bytes,
}

impl Response {
    /// Create a new, empty instance.
    pub fn new(version: Version, status: StatusCode) -> Self {
        Response {
            version,
            status,
            headers: HeaderMap::new(),
            body: Bytes::new(),
        }
    }

    /// Builder-style header append.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Self {
        self.headers.append(name, value);
        self
    }

    /// Builder-style body assignment.
    pub fn with_body(mut self, body: impl Into<Bytes>) -> Self {
        self.body = body.into();
        self
    }

    /// Serialize the status line and headers only (the body follows as-is
    /// unless chunked coding is applied by the caller).
    pub fn head_to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.headers.wire_len());
        out.extend_from_slice(self.version.as_str().as_bytes());
        out.push(b' ');
        out.extend_from_slice(self.status.0.to_string().as_bytes());
        out.push(b' ');
        out.extend_from_slice(self.status.reason().as_bytes());
        out.extend_from_slice(b"\r\n");
        self.headers.write_to(&mut out);
        out.extend_from_slice(b"\r\n");
        out
    }

    /// Serialize head plus body.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = self.head_to_bytes();
        out.extend_from_slice(&self.body);
        out
    }

    /// Serialized size in bytes.
    pub fn wire_len(&self) -> usize {
        self.head_to_bytes().len() + self.body.len()
    }

    /// Whether the connection persists after this response.
    pub fn keeps_alive(&self) -> bool {
        if self.headers.has_token("Connection", "close") {
            return false;
        }
        self.version.persistent_by_default() || self.headers.has_token("Connection", "keep-alive")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_serialization() {
        let req = Request::new(Method::Get, "/index.html", Version::Http11)
            .with_header("Host", "microscape.example");
        let bytes = req.to_bytes();
        assert_eq!(
            bytes,
            b"GET /index.html HTTP/1.1\r\nHost: microscape.example\r\n\r\n".to_vec()
        );
        assert_eq!(req.wire_len(), bytes.len());
    }

    #[test]
    fn request_with_body_gets_content_length() {
        let mut req = Request::new(Method::Post, "/submit", Version::Http11);
        req.body = Bytes::from_static(b"a=1");
        let s = String::from_utf8(req.to_bytes()).unwrap();
        assert!(s.contains("Content-Length: 3\r\n"));
        assert!(s.ends_with("\r\n\r\na=1"));
    }

    #[test]
    fn response_serialization() {
        let resp = Response::new(Version::Http11, StatusCode::OK)
            .with_header("Content-Length", "5")
            .with_body(&b"hello"[..]);
        let bytes = resp.to_bytes();
        let s = String::from_utf8(bytes).unwrap();
        assert!(s.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(s.ends_with("\r\n\r\nhello"));
    }

    #[test]
    fn keep_alive_semantics() {
        let r10 = Request::new(Method::Get, "/", Version::Http10);
        assert!(!r10.wants_keep_alive());
        let r10ka =
            Request::new(Method::Get, "/", Version::Http10).with_header("Connection", "Keep-Alive");
        assert!(r10ka.wants_keep_alive());
        let r11 = Request::new(Method::Get, "/", Version::Http11);
        assert!(r11.wants_keep_alive());
        let r11c =
            Request::new(Method::Get, "/", Version::Http11).with_header("Connection", "close");
        assert!(!r11c.wants_keep_alive());

        let resp = Response::new(Version::Http11, StatusCode::OK);
        assert!(resp.keeps_alive());
        let resp_close =
            Response::new(Version::Http11, StatusCode::OK).with_header("Connection", "close");
        assert!(!resp_close.keeps_alive());
    }

    #[test]
    fn compact_robot_request_is_small() {
        // The paper: "an average request size of around 190 bytes".
        let req = Request::new(Method::Get, "/images/logo.gif", Version::Http11)
            .with_header("Host", "www.microscape.example")
            .with_header("User-Agent", "libwww-robot/5.1")
            .with_header("Accept", "*/*")
            .with_header("If-None-Match", "\"2ca3-1a7b-33a1c7f2\"")
            .with_header("Accept-Encoding", "deflate");
        let n = req.wire_len();
        assert!(
            (150..=250).contains(&n),
            "compact request is ~190B, got {n}"
        );
    }
}
