//! Cache validators and conditional-request evaluation (RFC 2068 §13/§14).
//!
//! HTTP/1.1 adds *entity tags* — opaque, guaranteed-unique version
//! identifiers — alongside HTTP/1.0's date-based `Last-Modified`
//! validation. The paper's HTTP/1.1 robot issues conditional GETs with
//! `If-None-Match`; the HTTP/1.0 robot can only use `HEAD` or
//! `If-Modified-Since`.

use crate::date::{format_http_date, parse_http_date};
use crate::headers::HeaderMap;

/// An entity tag. Strong unless marked weak (`W/"..."`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ETag {
    /// Weak validators compare loosely (`W/` prefix).
    pub weak: bool,
    /// The opaque tag between the quotes.
    pub opaque: String,
}

impl ETag {
    /// A strong validator with the given opaque value.
    pub fn strong(opaque: impl Into<String>) -> Self {
        ETag {
            weak: false,
            opaque: opaque.into(),
        }
    }

    /// A weak validator.
    pub fn weak(opaque: impl Into<String>) -> Self {
        ETag {
            weak: true,
            opaque: opaque.into(),
        }
    }

    /// Derive a deterministic strong ETag from entity bytes and a
    /// modification time, mimicking Apache's inode-size-mtime format.
    pub fn derive(body: &[u8], mtime: u64) -> Self {
        // FNV-1a over the body stands in for the inode number.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in body {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        ETag::strong(format!(
            "{:x}-{:x}-{:x}",
            h & 0xFFFF_FFFF,
            body.len(),
            mtime
        ))
    }

    /// Serialize with quotes (and `W/` prefix when weak).
    pub fn to_header_value(&self) -> String {
        if self.weak {
            format!("W/\"{}\"", self.opaque)
        } else {
            format!("\"{}\"", self.opaque)
        }
    }

    /// Parse a single entity-tag token.
    pub fn parse(s: &str) -> Option<ETag> {
        let s = s.trim();
        let (weak, rest) = match s.strip_prefix("W/") {
            Some(r) => (true, r),
            None => (false, s),
        };
        let inner = rest.strip_prefix('"')?.strip_suffix('"')?;
        Some(ETag {
            weak,
            opaque: inner.to_string(),
        })
    }

    /// Strong comparison: both strong and identical.
    pub fn strong_eq(&self, other: &ETag) -> bool {
        !self.weak && !other.weak && self.opaque == other.opaque
    }

    /// Weak comparison: identical opaque values regardless of weakness.
    pub fn weak_eq(&self, other: &ETag) -> bool {
        self.opaque == other.opaque
    }
}

/// The validators attached to one stored entity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Validators {
    /// Entity tag, if the server assigned one.
    pub etag: Option<ETag>,
    /// Last modification time, epoch seconds.
    pub last_modified: Option<u64>,
}

impl Validators {
    /// A value carrying no validators.
    pub fn none() -> Self {
        Validators {
            etag: None,
            last_modified: None,
        }
    }

    /// Write validator headers into a response header map.
    pub fn write_headers(&self, headers: &mut HeaderMap) {
        if let Some(etag) = &self.etag {
            headers.set("ETag", etag.to_header_value());
        }
        if let Some(lm) = self.last_modified {
            headers.set("Last-Modified", format_http_date(lm));
        }
    }
}

/// The outcome of evaluating a conditional request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CondResult {
    /// Serve the full entity (200).
    Serve,
    /// The client's copy is current (304 Not Modified).
    NotModified,
}

/// Evaluate `If-None-Match` / `If-Modified-Since` request headers against
/// an entity's validators, per RFC 2068 §14.25/14.26.
pub fn evaluate_conditional(request_headers: &HeaderMap, entity: &Validators) -> CondResult {
    // If-None-Match takes precedence when present.
    if let Some(inm) = request_headers.get("If-None-Match") {
        if inm.trim() == "*" {
            return CondResult::NotModified;
        }
        if let Some(etag) = &entity.etag {
            let matched = inm
                .split(',')
                .filter_map(ETag::parse)
                // Weak comparison is permitted for GET conditionals.
                .any(|candidate| candidate.weak_eq(etag));
            if matched {
                return CondResult::NotModified;
            }
        }
        return CondResult::Serve;
    }

    if let Some(ims) = request_headers.get("If-Modified-Since") {
        if let (Some(since), Some(lm)) = (parse_http_date(ims), entity.last_modified) {
            if lm <= since {
                return CondResult::NotModified;
            }
        }
        return CondResult::Serve;
    }

    CondResult::Serve
}

/// Evaluate `If-Range` (RFC 2068 §14.27): ranges may only be honoured when
/// the entity is unchanged, otherwise the full entity is returned.
pub fn if_range_matches(request_headers: &HeaderMap, entity: &Validators) -> bool {
    let Some(val) = request_headers.get("If-Range") else {
        return true; // no If-Range: the Range header stands on its own
    };
    if let Some(tag) = ETag::parse(val) {
        return entity.etag.as_ref().is_some_and(|e| e.strong_eq(&tag));
    }
    if let (Some(date), Some(lm)) = (parse_http_date(val), entity.last_modified) {
        return lm <= date;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn etag_serialization() {
        assert_eq!(ETag::strong("abc").to_header_value(), "\"abc\"");
        assert_eq!(ETag::weak("abc").to_header_value(), "W/\"abc\"");
        assert_eq!(ETag::parse("\"abc\"").unwrap(), ETag::strong("abc"));
        assert_eq!(ETag::parse("W/\"abc\"").unwrap(), ETag::weak("abc"));
        assert!(ETag::parse("abc").is_none());
    }

    #[test]
    fn etag_comparisons() {
        let s = ETag::strong("v1");
        let w = ETag::weak("v1");
        assert!(s.strong_eq(&ETag::strong("v1")));
        assert!(!s.strong_eq(&w));
        assert!(s.weak_eq(&w));
        assert!(!s.weak_eq(&ETag::strong("v2")));
    }

    #[test]
    fn derive_is_deterministic_and_distinct() {
        let a = ETag::derive(b"content-a", 100);
        let b = ETag::derive(b"content-a", 100);
        let c = ETag::derive(b"content-b", 100);
        let d = ETag::derive(b"content-a", 200);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn if_none_match_hit() {
        let entity = Validators {
            etag: Some(ETag::strong("v1")),
            last_modified: Some(1000),
        };
        let mut req = HeaderMap::new();
        req.set("If-None-Match", "\"v1\"");
        assert_eq!(evaluate_conditional(&req, &entity), CondResult::NotModified);
        req.set("If-None-Match", "\"v0\", \"v1\"");
        assert_eq!(evaluate_conditional(&req, &entity), CondResult::NotModified);
        req.set("If-None-Match", "\"v2\"");
        assert_eq!(evaluate_conditional(&req, &entity), CondResult::Serve);
        req.set("If-None-Match", "*");
        assert_eq!(evaluate_conditional(&req, &entity), CondResult::NotModified);
    }

    #[test]
    fn if_modified_since() {
        let entity = Validators {
            etag: None,
            last_modified: Some(784_111_777),
        };
        let mut req = HeaderMap::new();
        req.set("If-Modified-Since", "Sun, 06 Nov 1994 08:49:37 GMT");
        assert_eq!(evaluate_conditional(&req, &entity), CondResult::NotModified);
        req.set("If-Modified-Since", "Sun, 06 Nov 1994 08:49:36 GMT");
        assert_eq!(evaluate_conditional(&req, &entity), CondResult::Serve);
        req.set("If-Modified-Since", "garbage");
        assert_eq!(evaluate_conditional(&req, &entity), CondResult::Serve);
    }

    #[test]
    fn inm_takes_precedence_over_ims() {
        let entity = Validators {
            etag: Some(ETag::strong("v2")),
            last_modified: Some(1000),
        };
        let mut req = HeaderMap::new();
        req.set("If-None-Match", "\"v1\"");
        req.set("If-Modified-Since", format_http_date(2000));
        // ETag mismatch: serve even though the date would say 304.
        assert_eq!(evaluate_conditional(&req, &entity), CondResult::Serve);
    }

    #[test]
    fn unconditional_serves() {
        let entity = Validators::none();
        assert_eq!(
            evaluate_conditional(&HeaderMap::new(), &entity),
            CondResult::Serve
        );
    }

    #[test]
    fn if_range_semantics() {
        let entity = Validators {
            etag: Some(ETag::strong("v1")),
            last_modified: Some(1000),
        };
        let mut req = HeaderMap::new();
        assert!(if_range_matches(&req, &entity), "absent If-Range passes");
        req.set("If-Range", "\"v1\"");
        assert!(if_range_matches(&req, &entity));
        req.set("If-Range", "\"v2\"");
        assert!(!if_range_matches(&req, &entity));
        req.set("If-Range", format_http_date(1500));
        assert!(if_range_matches(&req, &entity));
        req.set("If-Range", format_http_date(500));
        assert!(!if_range_matches(&req, &entity));
    }

    #[test]
    fn validators_write_headers() {
        let v = Validators {
            etag: Some(ETag::strong("x")),
            last_modified: Some(0),
        };
        let mut h = HeaderMap::new();
        v.write_headers(&mut h);
        assert_eq!(h.get("ETag"), Some("\"x\""));
        assert_eq!(
            h.get("Last-Modified"),
            Some("Thu, 01 Jan 1970 00:00:00 GMT")
        );
    }
}
