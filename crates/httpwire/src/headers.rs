//! An ordered, case-insensitive header map.
//!
//! Header order matters for wire-size measurements (the paper's request
//! profiles differ mostly in which headers products emit and how verbose
//! they are), so insertion order is preserved exactly.

use std::fmt;

/// One header line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Header {
    /// Header field name as written.
    pub name: String,
    /// Field value with surrounding whitespace trimmed.
    pub value: String,
}

/// Ordered multimap of headers with case-insensitive name lookup.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HeaderMap {
    entries: Vec<Header>,
}

impl HeaderMap {
    /// Create a new, empty instance.
    pub fn new() -> Self {
        HeaderMap::default()
    }

    /// Append a header, preserving any existing ones with the same name.
    pub fn append(&mut self, name: &str, value: impl Into<String>) {
        self.entries.push(Header {
            name: name.to_string(),
            value: value.into(),
        });
    }

    /// Replace all headers named `name` with a single value.
    pub fn set(&mut self, name: &str, value: impl Into<String>) {
        self.remove(name);
        self.append(name, value);
    }

    /// Remove all headers named `name`; returns whether any existed.
    pub fn remove(&mut self, name: &str) -> bool {
        let before = self.entries.len();
        self.entries.retain(|h| !h.name.eq_ignore_ascii_case(name));
        self.entries.len() != before
    }

    /// First value for `name`, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.entries
            .iter()
            .find(|h| h.name.eq_ignore_ascii_case(name))
            .map(|h| h.value.as_str())
    }

    /// All values for `name` in order.
    pub fn get_all<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a str> + 'a {
        self.entries
            .iter()
            .filter(move |h| h.name.eq_ignore_ascii_case(name))
            .map(|h| h.value.as_str())
    }

    /// Whether an entry with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// Parse a header's value as a decimal integer.
    pub fn get_int(&self, name: &str) -> Option<u64> {
        self.get(name).and_then(|v| v.trim().parse().ok())
    }

    /// True if any `name` header contains `token` as a comma-separated,
    /// case-insensitive list element (e.g. `Connection: keep-alive, close`).
    pub fn has_token(&self, name: &str, token: &str) -> bool {
        self.get_all(name)
            .flat_map(|v| v.split(','))
            .any(|t| t.trim().eq_ignore_ascii_case(token))
    }

    /// Iterate over the contents in order.
    pub fn iter(&self) -> impl Iterator<Item = &Header> {
        self.entries.iter()
    }

    /// Number of contained elements.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is contained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serialized size in bytes, including each `: ` and CRLF.
    pub fn wire_len(&self) -> usize {
        self.entries
            .iter()
            .map(|h| h.name.len() + 2 + h.value.len() + 2)
            .sum()
    }

    /// Write all header lines (without the terminating blank line).
    pub fn write_to(&self, out: &mut Vec<u8>) {
        for h in &self.entries {
            out.extend_from_slice(h.name.as_bytes());
            out.extend_from_slice(b": ");
            out.extend_from_slice(h.value.as_bytes());
            out.extend_from_slice(b"\r\n");
        }
    }
}

impl fmt::Display for HeaderMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for h in &self.entries {
            writeln!(f, "{}: {}", h.name, h.value)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_insensitive_lookup() {
        let mut h = HeaderMap::new();
        h.append("Content-Length", "42");
        assert_eq!(h.get("content-length"), Some("42"));
        assert_eq!(h.get("CONTENT-LENGTH"), Some("42"));
        assert_eq!(h.get_int("Content-Length"), Some(42));
        assert!(h.contains("content-LENGTH"));
        assert!(!h.contains("Content-Type"));
    }

    #[test]
    fn order_preserved() {
        let mut h = HeaderMap::new();
        h.append("B", "2");
        h.append("A", "1");
        h.append("B", "3");
        let names: Vec<_> = h.iter().map(|x| x.name.as_str()).collect();
        assert_eq!(names, vec!["B", "A", "B"]);
        let values: Vec<_> = h.get_all("b").collect();
        assert_eq!(values, vec!["2", "3"]);
    }

    #[test]
    fn set_replaces_all() {
        let mut h = HeaderMap::new();
        h.append("X", "1");
        h.append("X", "2");
        h.set("x", "3");
        assert_eq!(h.get_all("X").count(), 1);
        assert_eq!(h.get("X"), Some("3"));
    }

    #[test]
    fn token_lists() {
        let mut h = HeaderMap::new();
        h.append("Connection", "Keep-Alive, Close");
        assert!(h.has_token("connection", "close"));
        assert!(h.has_token("Connection", "keep-alive"));
        assert!(!h.has_token("Connection", "upgrade"));
    }

    #[test]
    fn wire_len_matches_serialization() {
        let mut h = HeaderMap::new();
        h.append("Host", "www.example.com");
        h.append("Accept", "*/*");
        let mut out = Vec::new();
        h.write_to(&mut out);
        assert_eq!(out.len(), h.wire_len());
        assert_eq!(out, b"Host: www.example.com\r\nAccept: */*\r\n".to_vec());
    }
}
