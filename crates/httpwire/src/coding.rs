//! Content codings (`Content-Encoding`) and their negotiation
//! (`Accept-Encoding`), per RFC 2068 §3.5/§14.3.
//!
//! The paper's compression experiment: the client advertises
//! `Accept-Encoding: deflate`, the server responds with a pre-deflated
//! HTML entity marked `Content-Encoding: deflate`, and the client inflates
//! on the fly. Only the HTML is compressed — the GIF images already carry
//! their own compression.

use crate::headers::HeaderMap;
use flate::{inflate, Level};

/// A content coding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ContentCoding {
    /// No transformation.
    #[default]
    Identity,
    /// The zlib format (RFC 1950), HTTP's "deflate" coding.
    Deflate,
}

impl ContentCoding {
    /// The wire token for this value.
    pub fn token(self) -> &'static str {
        match self {
            ContentCoding::Identity => "identity",
            ContentCoding::Deflate => "deflate",
        }
    }

    /// Parse a coding token (case-insensitive).
    pub fn parse(s: &str) -> Option<ContentCoding> {
        let s = s.trim();
        if s.eq_ignore_ascii_case("identity") {
            Some(ContentCoding::Identity)
        } else if s.eq_ignore_ascii_case("deflate") {
            Some(ContentCoding::Deflate)
        } else {
            None
        }
    }
}

/// Errors decoding an encoded entity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodingError {
    /// The `Content-Encoding` token is not supported.
    Unsupported,
    /// The encoded data is corrupt.
    Corrupt,
}

impl std::fmt::Display for CodingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodingError::Unsupported => f.write_str("unsupported content-coding"),
            CodingError::Corrupt => f.write_str("corrupt encoded entity"),
        }
    }
}

impl std::error::Error for CodingError {}

/// Apply a coding to entity bytes.
///
/// HTTP's "deflate" coding is the zlib container (RFC 1950); we emit that,
/// matching the paper's use of the zlib library. (Historically some
/// implementations sent raw RFC 1951 streams — the decoder below accepts
/// both, as robust clients learned to.)
pub fn encode(coding: ContentCoding, body: &[u8], level: Level) -> Vec<u8> {
    match coding {
        ContentCoding::Identity => body.to_vec(),
        ContentCoding::Deflate => flate::zlib::compress(body, level),
    }
}

/// Undo a coding.
pub fn decode(coding: ContentCoding, body: &[u8]) -> Result<Vec<u8>, CodingError> {
    match coding {
        ContentCoding::Identity => Ok(body.to_vec()),
        ContentCoding::Deflate => match flate::zlib::decompress(body) {
            Ok(v) => Ok(v),
            // Tolerate raw-deflate senders.
            Err(_) => inflate(body).map_err(|_| CodingError::Corrupt),
        },
    }
}

/// Convenience: deflate at the level the paper used (zlib defaults).
pub fn deflate_entity(body: &[u8]) -> Vec<u8> {
    encode(ContentCoding::Deflate, body, Level::Default)
}

/// Does the request's `Accept-Encoding` permit `coding`?
pub fn accepts(request_headers: &HeaderMap, coding: ContentCoding) -> bool {
    match coding {
        ContentCoding::Identity => true,
        ContentCoding::Deflate => request_headers.has_token("Accept-Encoding", "deflate"),
    }
}

/// The coding declared by a message's `Content-Encoding` header.
pub fn declared_coding(headers: &HeaderMap) -> Result<ContentCoding, CodingError> {
    match headers.get("Content-Encoding") {
        None => Ok(ContentCoding::Identity),
        Some(v) => ContentCoding::parse(v).ok_or(CodingError::Unsupported),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flate::deflate;

    #[test]
    fn deflate_roundtrip() {
        let body = b"<html><body>compress me compress me compress me</body></html>".repeat(10);
        let enc = encode(ContentCoding::Deflate, &body, Level::Default);
        assert!(enc.len() < body.len());
        assert_eq!(decode(ContentCoding::Deflate, &enc).unwrap(), body);
    }

    #[test]
    fn raw_deflate_accepted_too() {
        let body = b"interoperability matters ".repeat(20);
        let raw = deflate(&body, Level::Default);
        assert_eq!(decode(ContentCoding::Deflate, &raw).unwrap(), body.to_vec());
    }

    #[test]
    fn identity_passthrough() {
        let body = b"plain";
        assert_eq!(encode(ContentCoding::Identity, body, Level::Default), body);
        assert_eq!(decode(ContentCoding::Identity, body).unwrap(), body);
    }

    #[test]
    fn negotiation() {
        let mut h = HeaderMap::new();
        assert!(!accepts(&h, ContentCoding::Deflate));
        assert!(accepts(&h, ContentCoding::Identity));
        h.set("Accept-Encoding", "deflate");
        assert!(accepts(&h, ContentCoding::Deflate));
        h.set("Accept-Encoding", "gzip, DEFLATE");
        assert!(accepts(&h, ContentCoding::Deflate));
        h.set("Accept-Encoding", "gzip");
        assert!(!accepts(&h, ContentCoding::Deflate));
    }

    #[test]
    fn declared_coding_parsing() {
        let mut h = HeaderMap::new();
        assert_eq!(declared_coding(&h).unwrap(), ContentCoding::Identity);
        h.set("Content-Encoding", "deflate");
        assert_eq!(declared_coding(&h).unwrap(), ContentCoding::Deflate);
        h.set("Content-Encoding", "br");
        assert_eq!(declared_coding(&h).unwrap_err(), CodingError::Unsupported);
    }

    #[test]
    fn corrupt_data_detected() {
        assert_eq!(
            decode(ContentCoding::Deflate, b"\x00garbage").unwrap_err(),
            CodingError::Corrupt
        );
    }
}
