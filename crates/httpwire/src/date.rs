//! HTTP-date formatting and parsing (RFC 1123 fixed-format, the preferred
//! form in both HTTP/1.0 and HTTP/1.1).
//!
//! Dates are modelled as seconds since the Unix epoch (`u64`); the
//! simulator's experiments run against a fixed virtual calendar, so no
//! system clock is ever consulted.

const DAYS: [&str; 7] = ["Thu", "Fri", "Sat", "Sun", "Mon", "Tue", "Wed"];
const MONTHS: [&str; 12] = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
];

/// Convert days-since-epoch to (year, month 1-12, day 1-31) using Howard
/// Hinnant's civil-from-days algorithm.
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Inverse of [`civil_from_days`].
fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = y.div_euclid(400);
    let yoe = y - era * 400;
    let mp = if m > 2 { m - 3 } else { m + 9 } as i64;
    let doy = (153 * mp + 2) / 5 + d as i64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe - 719_468
}

/// Format epoch seconds as an RFC 1123 HTTP-date,
/// e.g. `Sun, 06 Nov 1994 08:49:37 GMT`.
pub fn format_http_date(epoch_secs: u64) -> String {
    let days = (epoch_secs / 86_400) as i64;
    let secs = epoch_secs % 86_400;
    let (y, m, d) = civil_from_days(days);
    let weekday = DAYS[(days % 7) as usize];
    format!(
        "{}, {:02} {} {} {:02}:{:02}:{:02} GMT",
        weekday,
        d,
        MONTHS[(m - 1) as usize],
        y,
        secs / 3600,
        (secs / 60) % 60,
        secs % 60
    )
}

/// Parse an RFC 1123 HTTP-date back to epoch seconds. Returns `None` for
/// malformed input (the obsolete RFC 850 and asctime forms are not
/// emitted by any component in this workspace).
pub fn parse_http_date(s: &str) -> Option<u64> {
    // "Sun, 06 Nov 1994 08:49:37 GMT"
    let s = s.trim();
    let rest = s.split_once(", ")?.1;
    let mut parts = rest.split_ascii_whitespace();
    let day: u32 = parts.next()?.parse().ok()?;
    let mon_name = parts.next()?;
    let month = MONTHS.iter().position(|&m| m == mon_name)? as u32 + 1;
    let year: i64 = parts.next()?.parse().ok()?;
    let hms = parts.next()?;
    let tz = parts.next()?;
    if tz != "GMT" {
        return None;
    }
    let mut hms_it = hms.split(':');
    let h: u64 = hms_it.next()?.parse().ok()?;
    let mi: u64 = hms_it.next()?.parse().ok()?;
    let sec: u64 = hms_it.next()?.parse().ok()?;
    if h > 23 || mi > 59 || sec > 60 || day == 0 || day > 31 {
        return None;
    }
    let days = days_from_civil(year, month, day);
    if days < 0 {
        return None;
    }
    Some(days as u64 * 86_400 + h * 3600 + mi * 60 + sec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc_example() {
        // The canonical example from RFC 2068.
        assert_eq!(
            format_http_date(784_111_777),
            "Sun, 06 Nov 1994 08:49:37 GMT"
        );
        assert_eq!(
            parse_http_date("Sun, 06 Nov 1994 08:49:37 GMT"),
            Some(784_111_777)
        );
    }

    #[test]
    fn epoch_is_thursday() {
        assert_eq!(format_http_date(0), "Thu, 01 Jan 1970 00:00:00 GMT");
    }

    #[test]
    fn paper_era_date() {
        // 24 June 1997, the NOTE's date.
        let t = parse_http_date("Tue, 24 Jun 1997 12:00:00 GMT").unwrap();
        assert_eq!(format_http_date(t), "Tue, 24 Jun 1997 12:00:00 GMT");
    }

    #[test]
    fn roundtrip_many() {
        for &t in &[
            0u64,
            1,
            86_399,
            86_400,
            784_111_777,
            867_715_200,
            4_102_444_800,
        ] {
            assert_eq!(parse_http_date(&format_http_date(t)), Some(t), "t={t}");
        }
    }

    #[test]
    fn leap_year_handling() {
        // 29 Feb 1996 existed.
        let t = parse_http_date("Thu, 29 Feb 1996 00:00:00 GMT").unwrap();
        assert_eq!(format_http_date(t), "Thu, 29 Feb 1996 00:00:00 GMT");
    }

    #[test]
    fn malformed_rejected() {
        assert_eq!(parse_http_date("not a date"), None);
        assert_eq!(parse_http_date("Sun, 06 Nov 1994 08:49:37 PST"), None);
        assert_eq!(parse_http_date("Sun, 32 Nov 1994 08:49:37 GMT"), None);
        assert_eq!(parse_http_date(""), None);
    }
}
