//! Incremental, pipelining-safe HTTP message parsers.
//!
//! Both parsers accumulate raw bytes and yield complete messages on demand.
//! Because HTTP/1.1 pipelining packs many messages into single TCP
//! segments, the parsers are careful to consume exactly one message at a
//! time and leave trailing bytes untouched.

use crate::chunked::ChunkedDecoder;
use crate::headers::HeaderMap;
use crate::message::{Request, Response};
use crate::types::{Method, StatusCode, Version};
use bytes::{Bytes, BytesMut};

/// Parse failures. In a real server these map to `400 Bad Request`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseError {
    /// Bad request line.
    BadRequestLine,
    /// Bad status line.
    BadStatusLine,
    /// Bad header.
    BadHeader,
    /// Bad chunk.
    BadChunk,
    /// A message without a determinate length on a connection that must
    /// stay open.
    LengthRequired,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ParseError::BadRequestLine => "malformed request line",
            ParseError::BadStatusLine => "malformed status line",
            ParseError::BadHeader => "malformed header",
            ParseError::BadChunk => "malformed chunked body",
            ParseError::LengthRequired => "message length cannot be determined",
        };
        f.write_str(s)
    }
}

impl std::error::Error for ParseError {}

/// Find the end of the header block (`\r\n\r\n`); returns the offset just
/// past it. Tolerates bare-LF line endings like most deployed servers.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    let mut i = 0;
    while i < buf.len() {
        if buf[i] == b'\n' {
            // \n\n or \n\r\n
            if i + 1 < buf.len() && buf[i + 1] == b'\n' {
                return Some(i + 2);
            }
            if i + 2 < buf.len() && buf[i + 1] == b'\r' && buf[i + 2] == b'\n' {
                return Some(i + 3);
            }
        }
        i += 1;
    }
    None
}

fn parse_headers(lines: &str) -> Result<HeaderMap, ParseError> {
    let mut headers = HeaderMap::new();
    for line in lines.split('\n') {
        let line = line.trim_end_matches('\r');
        if line.is_empty() {
            continue;
        }
        let (name, value) = line.split_once(':').ok_or(ParseError::BadHeader)?;
        if name.is_empty() || name.contains(' ') {
            return Err(ParseError::BadHeader);
        }
        headers.append(name, value.trim().to_string());
    }
    Ok(headers)
}

/// How the body of a message is delimited.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BodyKind {
    None,
    Length(usize),
    Chunked,
    /// Body runs until the peer closes the connection (HTTP/1.0 style).
    ToClose,
}

// ---------------------------------------------------------------------
// Request parser (server side)
// ---------------------------------------------------------------------

/// Incremental parser for a stream of requests on one connection.
#[derive(Debug, Default)]
pub struct RequestParser {
    buf: BytesMut,
}

impl RequestParser {
    /// Create a new, empty instance.
    pub fn new() -> Self {
        RequestParser::default()
    }

    /// Append raw bytes from the connection.
    pub fn feed(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Bytes buffered but not yet parsed into a message.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Try to parse the next complete request.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<Request>, ParseError> {
        let Some(head_end) = find_head_end(&self.buf) else {
            return Ok(None);
        };
        let head =
            std::str::from_utf8(&self.buf[..head_end]).map_err(|_| ParseError::BadRequestLine)?;
        let mut lines = head.splitn(2, '\n');
        let request_line = lines.next().unwrap_or("").trim_end_matches('\r');
        let rest = lines.next().unwrap_or("");

        let mut parts = request_line.split_ascii_whitespace();
        let method: Method = parts
            .next()
            .ok_or(ParseError::BadRequestLine)?
            .parse()
            .map_err(|_| ParseError::BadRequestLine)?;
        let target = parts.next().ok_or(ParseError::BadRequestLine)?.to_string();
        let version: Version = parts
            .next()
            .ok_or(ParseError::BadRequestLine)?
            .parse()
            .map_err(|_| ParseError::BadRequestLine)?;
        if parts.next().is_some() {
            return Err(ParseError::BadRequestLine);
        }
        let headers = parse_headers(rest)?;

        // Requests must have a determinate length.
        let body_kind = if headers.has_token("Transfer-Encoding", "chunked") {
            BodyKind::Chunked
        } else if let Some(n) = headers.get_int("Content-Length") {
            BodyKind::Length(n as usize)
        } else {
            BodyKind::None
        };

        match body_kind {
            BodyKind::None => {
                let _ = self.buf.split_to(head_end);
                Ok(Some(Request {
                    method,
                    target,
                    version,
                    headers,
                    body: Bytes::new(),
                }))
            }
            BodyKind::Length(n) => {
                if self.buf.len() < head_end + n {
                    return Ok(None);
                }
                let _ = self.buf.split_to(head_end);
                let body = self.buf.split_to(n).freeze();
                Ok(Some(Request {
                    method,
                    target,
                    version,
                    headers,
                    body,
                }))
            }
            BodyKind::Chunked => {
                let mut dec = ChunkedDecoder::new();
                let used = dec
                    .feed(&self.buf[head_end..])
                    .map_err(|_| ParseError::BadChunk)?;
                if !dec.done {
                    return Ok(None);
                }
                let _ = self.buf.split_to(head_end + used);
                Ok(Some(Request {
                    method,
                    target,
                    version,
                    headers,
                    body: Bytes::from(dec.output),
                }))
            }
            BodyKind::ToClose => unreachable!("requests are never close-delimited"),
        }
    }
}

// ---------------------------------------------------------------------
// Response parser (client side)
// ---------------------------------------------------------------------

/// A fully parsed head (status line + header block) whose message body
/// has not finished arriving. Cached between polls so that feeding a
/// large body chunk by chunk costs O(chunk) per poll instead of
/// re-scanning and re-allocating the whole header block every time —
/// the client polls once per arriving segment, so without this cache
/// header parsing dominates the hot path.
#[derive(Debug)]
struct ParsedHead {
    head_end: usize,
    version: Version,
    status: StatusCode,
    headers: HeaderMap,
}

/// Incremental parser for a stream of responses on one connection.
///
/// Pipelined HTTP requires the client to remember which request each
/// response answers: a response to `HEAD` has headers describing a body
/// that is *not* sent. Register each outgoing request's method with
/// [`ResponseParser::expect`] before (or as) it is transmitted.
#[derive(Debug, Default)]
pub struct ResponseParser {
    buf: BytesMut,
    expectations: std::collections::VecDeque<Method>,
    /// Head of the in-progress message, parsed once per message.
    /// Invalidated when the message is consumed (`buf` is only ever
    /// appended to otherwise, so the cached offsets stay valid).
    head: Option<ParsedHead>,
}

impl ResponseParser {
    /// Create a new, empty instance.
    pub fn new() -> Self {
        ResponseParser::default()
    }

    /// Register that a request with `method` was sent; responses are
    /// matched to expectations in FIFO order.
    pub fn expect(&mut self, method: Method) {
        self.expectations.push_back(method);
    }

    /// Number of responses still outstanding.
    pub fn outstanding(&self) -> usize {
        self.expectations.len()
    }

    /// Append raw bytes from the connection.
    pub fn feed(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Bytes buffered but not yet consumed.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    fn classify(status: StatusCode, headers: &HeaderMap, method: Method) -> BodyKind {
        if !method.response_has_body() || status.bodyless() {
            return BodyKind::None;
        }
        if headers.has_token("Transfer-Encoding", "chunked") {
            return BodyKind::Chunked;
        }
        if let Some(n) = headers.get_int("Content-Length") {
            return BodyKind::Length(n as usize);
        }
        BodyKind::ToClose
    }

    /// Try to parse the next complete response. Close-delimited responses
    /// are only returned by [`ResponseParser::finish`].
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<Response>, ParseError> {
        self.parse(false)
    }

    /// Peek at the *in-progress* response: its headers plus however much
    /// of its body has arrived. Returns `None` until the header block is
    /// complete (or if the status line is malformed). This is what lets
    /// a streaming client start parsing HTML (and issuing pipelined
    /// image requests) before the document finishes arriving. Borrows
    /// the cached head — repeated peeks are allocation-free.
    pub fn in_progress(&mut self) -> Option<(&HeaderMap, &[u8])> {
        self.ensure_head().ok()?;
        let ph = self.head.as_ref()?;
        Some((&ph.headers, &self.buf[ph.head_end..]))
    }

    /// The peer closed the connection: flush a close-delimited response if
    /// one is pending.
    pub fn finish(&mut self) -> Result<Option<Response>, ParseError> {
        self.parse(true)
    }

    /// Parse the head once per message, caching it in `self.head`.
    /// Returns `Ok(false)` while the header block is still incomplete.
    fn ensure_head(&mut self) -> Result<bool, ParseError> {
        if self.head.is_some() {
            return Ok(true);
        }
        let Some(head_end) = find_head_end(&self.buf) else {
            return Ok(false);
        };
        let head =
            std::str::from_utf8(&self.buf[..head_end]).map_err(|_| ParseError::BadStatusLine)?;
        let mut lines = head.splitn(2, '\n');
        let status_line = lines.next().unwrap_or("").trim_end_matches('\r');
        let rest = lines.next().unwrap_or("");

        let mut parts = status_line.splitn(3, ' ');
        let version: Version = parts
            .next()
            .ok_or(ParseError::BadStatusLine)?
            .parse()
            .map_err(|_| ParseError::BadStatusLine)?;
        let code: u16 = parts
            .next()
            .ok_or(ParseError::BadStatusLine)?
            .parse()
            .map_err(|_| ParseError::BadStatusLine)?;
        let status = StatusCode(code);
        let headers = parse_headers(rest)?;
        self.head = Some(ParsedHead {
            head_end,
            version,
            status,
            headers,
        });
        Ok(true)
    }

    fn parse(&mut self, at_eof: bool) -> Result<Option<Response>, ParseError> {
        if !self.ensure_head()? {
            return Ok(None);
        }
        let ph = self.head.as_ref().expect("ensure_head filled the cache");
        let head_end = ph.head_end;
        let method = self.expectations.front().copied().unwrap_or(Method::Get);
        let body_kind = Self::classify(ph.status, &ph.headers, method);

        let (body, consumed) = match body_kind {
            BodyKind::None => (Bytes::new(), head_end),
            BodyKind::Length(n) => {
                if self.buf.len() < head_end + n {
                    return Ok(None);
                }
                (
                    Bytes::pooled_copy_from_slice(&self.buf[head_end..head_end + n]),
                    head_end + n,
                )
            }
            BodyKind::Chunked => {
                let mut dec = ChunkedDecoder::new();
                let used = dec
                    .feed(&self.buf[head_end..])
                    .map_err(|_| ParseError::BadChunk)?;
                if !dec.done {
                    return Ok(None);
                }
                (Bytes::from(dec.output), head_end + used)
            }
            BodyKind::ToClose => {
                if !at_eof {
                    return Ok(None);
                }
                (
                    Bytes::pooled_copy_from_slice(&self.buf[head_end..]),
                    self.buf.len(),
                )
            }
        };

        let ph = self.head.take().expect("checked above");
        let _ = self.buf.split_to(consumed);
        self.expectations.pop_front();
        Ok(Some(Response {
            version: ph.version,
            status: ph.status,
            headers: ph.headers,
            body,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_request() {
        let mut p = RequestParser::new();
        p.feed(b"GET /index.html HTTP/1.1\r\nHost: a.example\r\n\r\n");
        let req = p.next().unwrap().unwrap();
        assert_eq!(req.method, Method::Get);
        assert_eq!(req.target, "/index.html");
        assert_eq!(req.version, Version::Http11);
        assert_eq!(req.headers.get("host"), Some("a.example"));
        assert!(p.next().unwrap().is_none());
    }

    #[test]
    fn pipelined_requests_parse_one_at_a_time() {
        let mut p = RequestParser::new();
        let wire = b"GET /a HTTP/1.1\r\nHost: x\r\n\r\nGET /b HTTP/1.1\r\nHost: x\r\n\r\nHEAD /c HTTP/1.1\r\nHost: x\r\n\r\n";
        p.feed(wire);
        let a = p.next().unwrap().unwrap();
        let b = p.next().unwrap().unwrap();
        let c = p.next().unwrap().unwrap();
        assert_eq!(a.target, "/a");
        assert_eq!(b.target, "/b");
        assert_eq!(c.method, Method::Head);
        assert!(p.next().unwrap().is_none());
        assert_eq!(p.buffered(), 0);
    }

    #[test]
    fn request_arrives_byte_by_byte() {
        let wire = b"GET /slow HTTP/1.0\r\nUser-Agent: test\r\n\r\n";
        let mut p = RequestParser::new();
        for (i, &b) in wire.iter().enumerate() {
            p.feed(&[b]);
            let r = p.next().unwrap();
            if i + 1 < wire.len() {
                assert!(r.is_none(), "complete too early at {i}");
            } else {
                assert_eq!(r.unwrap().target, "/slow");
            }
        }
    }

    #[test]
    fn request_with_body() {
        let mut p = RequestParser::new();
        p.feed(b"POST /f HTTP/1.1\r\nContent-Length: 4\r\n\r\nwxyz");
        let req = p.next().unwrap().unwrap();
        assert_eq!(&req.body[..], b"wxyz");
    }

    #[test]
    fn chunked_request_body() {
        let mut p = RequestParser::new();
        p.feed(b"POST /f HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n3\r\nabc\r\n0\r\n\r\n");
        let req = p.next().unwrap().unwrap();
        assert_eq!(&req.body[..], b"abc");
        assert_eq!(p.buffered(), 0);
    }

    #[test]
    fn bad_request_line() {
        let mut p = RequestParser::new();
        p.feed(b"FROB / HTTP/1.1\r\n\r\n");
        assert_eq!(p.next().unwrap_err(), ParseError::BadRequestLine);
    }

    #[test]
    fn parse_simple_response() {
        let mut p = ResponseParser::new();
        p.expect(Method::Get);
        p.feed(b"HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nhello");
        let resp = p.next().unwrap().unwrap();
        assert_eq!(resp.status, StatusCode::OK);
        assert_eq!(&resp.body[..], b"hello");
        assert_eq!(p.outstanding(), 0);
    }

    #[test]
    fn head_response_has_no_body() {
        let mut p = ResponseParser::new();
        p.expect(Method::Head);
        p.expect(Method::Get);
        // HEAD response advertises Content-Length but sends no body; the
        // next response follows immediately.
        p.feed(b"HTTP/1.1 200 OK\r\nContent-Length: 999\r\n\r\nHTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok");
        let head = p.next().unwrap().unwrap();
        assert!(head.body.is_empty());
        assert_eq!(head.headers.get_int("Content-Length"), Some(999));
        let get = p.next().unwrap().unwrap();
        assert_eq!(&get.body[..], b"ok");
    }

    #[test]
    fn not_modified_has_no_body() {
        let mut p = ResponseParser::new();
        p.expect(Method::Get);
        p.expect(Method::Get);
        p.feed(
            b"HTTP/1.1 304 Not Modified\r\nETag: \"x\"\r\n\r\nHTTP/1.1 304 Not Modified\r\n\r\n",
        );
        assert_eq!(p.next().unwrap().unwrap().status, StatusCode::NOT_MODIFIED);
        assert_eq!(p.next().unwrap().unwrap().status, StatusCode::NOT_MODIFIED);
    }

    #[test]
    fn pipelined_responses() {
        let mut p = ResponseParser::new();
        for _ in 0..3 {
            p.expect(Method::Get);
        }
        let mut wire = Vec::new();
        for i in 0..3 {
            wire.extend_from_slice(
                format!("HTTP/1.1 200 OK\r\nContent-Length: 1\r\n\r\n{i}").as_bytes(),
            );
        }
        p.feed(&wire);
        for i in 0..3u8 {
            let r = p.next().unwrap().unwrap();
            assert_eq!(r.body[0], b'0' + i);
        }
        assert!(p.next().unwrap().is_none());
    }

    #[test]
    fn chunked_response() {
        let mut p = ResponseParser::new();
        p.expect(Method::Get);
        p.feed(b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n4\r\nwiki\r\n5\r\npedia\r\n0\r\n\r\n");
        let r = p.next().unwrap().unwrap();
        assert_eq!(&r.body[..], b"wikipedia");
    }

    #[test]
    fn close_delimited_response() {
        let mut p = ResponseParser::new();
        p.expect(Method::Get);
        p.feed(b"HTTP/1.0 200 OK\r\nContent-Type: text/html\r\n\r\npartial body");
        assert!(p.next().unwrap().is_none(), "no length: wait for close");
        p.feed(b" more");
        assert!(p.next().unwrap().is_none());
        let r = p.finish().unwrap().unwrap();
        assert_eq!(&r.body[..], b"partial body more");
    }

    #[test]
    fn incomplete_fixed_body_waits() {
        let mut p = ResponseParser::new();
        p.expect(Method::Get);
        p.feed(b"HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\n12345");
        assert!(p.next().unwrap().is_none());
        p.feed(b"67890");
        assert_eq!(&p.next().unwrap().unwrap().body[..], b"1234567890");
    }

    #[test]
    fn in_progress_exposes_partial_body() {
        let mut p = ResponseParser::new();
        p.expect(Method::Get);
        p.feed(b"HTTP/1.1 200 OK\r\nContent-Length: 100\r\n\r\npartial body so far");
        let (headers, body) = p.in_progress().expect("head complete");
        assert_eq!(headers.get_int("Content-Length"), Some(100));
        assert_eq!(body, b"partial body so far");
        // Not yet a complete response.
        assert!(p.next().unwrap().is_none());

        let mut p = ResponseParser::new();
        p.feed(b"HTTP/1.1 200 OK\r\nContent-");
        assert!(p.in_progress().is_none(), "head incomplete");
    }

    #[test]
    fn bad_status_line() {
        let mut p = ResponseParser::new();
        p.expect(Method::Get);
        p.feed(b"SMTP/1.0 garbage\r\n\r\n");
        assert_eq!(p.next().unwrap_err(), ParseError::BadStatusLine);
    }

    #[test]
    fn header_parsing_edge_cases() {
        let mut p = RequestParser::new();
        p.feed(b"GET / HTTP/1.1\r\nX-Multi: a\r\nX-Multi: b\r\nX-Spacey:    v   \r\n\r\n");
        let req = p.next().unwrap().unwrap();
        assert_eq!(
            req.headers.get_all("x-multi").collect::<Vec<_>>(),
            vec!["a", "b"]
        );
        assert_eq!(req.headers.get("x-spacey"), Some("v"));
    }
}
