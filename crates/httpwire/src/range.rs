//! Byte-range requests (RFC 2068 §14.36).
//!
//! The paper argues range requests are how an HTTP/1.1 browser gets image
//! metadata early over a single connection ("poor man's multiplexing"):
//! a revalidation combines `If-None-Match` with `If-Range` plus a small
//! leading range so changed objects return only their first bytes.

/// One byte-range specifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ByteRange {
    /// `first-last` (inclusive) or `first-` (to end).
    FromTo(u64, Option<u64>),
    /// `-suffix`: the final `suffix` bytes.
    Suffix(u64),
}

impl ByteRange {
    /// Resolve against an entity of `len` bytes into a concrete
    /// `(offset, length)`, or `None` when unsatisfiable.
    pub fn resolve(self, len: u64) -> Option<(u64, u64)> {
        match self {
            ByteRange::FromTo(first, last) => {
                if first >= len {
                    return None;
                }
                let last = last.map_or(len - 1, |l| l.min(len - 1));
                if last < first {
                    return None;
                }
                Some((first, last - first + 1))
            }
            ByteRange::Suffix(n) => {
                if n == 0 {
                    return None;
                }
                let n = n.min(len);
                Some((len - n, n))
            }
        }
    }

    /// Serialize as a range-spec token.
    pub fn to_spec(self) -> String {
        match self {
            ByteRange::FromTo(a, Some(b)) => format!("{a}-{b}"),
            ByteRange::FromTo(a, None) => format!("{a}-"),
            ByteRange::Suffix(n) => format!("-{n}"),
        }
    }
}

/// Parse a `Range: bytes=...` header value. Returns `None` for a malformed
/// header (servers then ignore the header, per the RFC).
pub fn parse_range_header(value: &str) -> Option<Vec<ByteRange>> {
    let spec = value.trim().strip_prefix("bytes=")?;
    let mut out = Vec::new();
    for part in spec.split(',') {
        let part = part.trim();
        if let Some(suffix) = part.strip_prefix('-') {
            out.push(ByteRange::Suffix(suffix.parse().ok()?));
        } else {
            let (first, last) = part.split_once('-')?;
            let first: u64 = first.parse().ok()?;
            let last = if last.is_empty() {
                None
            } else {
                Some(last.parse().ok()?)
            };
            if let Some(l) = last {
                if l < first {
                    return None;
                }
            }
            out.push(ByteRange::FromTo(first, last));
        }
    }
    if out.is_empty() {
        None
    } else {
        Some(out)
    }
}

/// Build a `Range` header value from range specs.
pub fn format_range_header(ranges: &[ByteRange]) -> String {
    let specs: Vec<String> = ranges.iter().map(|r| r.to_spec()).collect();
    format!("bytes={}", specs.join(","))
}

/// Build a `Content-Range` response header for a satisfied range.
pub fn content_range(offset: u64, len: u64, total: u64) -> String {
    format!("bytes {}-{}/{}", offset, offset + len - 1, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple() {
        assert_eq!(
            parse_range_header("bytes=0-255"),
            Some(vec![ByteRange::FromTo(0, Some(255))])
        );
        assert_eq!(
            parse_range_header("bytes=500-"),
            Some(vec![ByteRange::FromTo(500, None)])
        );
        assert_eq!(
            parse_range_header("bytes=-128"),
            Some(vec![ByteRange::Suffix(128)])
        );
        assert_eq!(
            parse_range_header("bytes=0-0,-1"),
            Some(vec![ByteRange::FromTo(0, Some(0)), ByteRange::Suffix(1)])
        );
    }

    #[test]
    fn parse_rejects_malformed() {
        assert_eq!(parse_range_header("bits=0-1"), None);
        assert_eq!(parse_range_header("bytes=5-2"), None);
        assert_eq!(parse_range_header("bytes="), None);
        assert_eq!(parse_range_header("bytes=abc"), None);
    }

    #[test]
    fn resolve_ranges() {
        assert_eq!(
            ByteRange::FromTo(0, Some(255)).resolve(1000),
            Some((0, 256))
        );
        assert_eq!(ByteRange::FromTo(0, Some(255)).resolve(100), Some((0, 100)));
        assert_eq!(ByteRange::FromTo(990, None).resolve(1000), Some((990, 10)));
        assert_eq!(ByteRange::FromTo(1000, None).resolve(1000), None);
        assert_eq!(ByteRange::Suffix(10).resolve(1000), Some((990, 10)));
        assert_eq!(ByteRange::Suffix(5000).resolve(1000), Some((0, 1000)));
        assert_eq!(ByteRange::Suffix(0).resolve(1000), None);
    }

    #[test]
    fn header_roundtrip() {
        let ranges = vec![ByteRange::FromTo(0, Some(511)), ByteRange::Suffix(64)];
        let hdr = format_range_header(&ranges);
        assert_eq!(hdr, "bytes=0-511,-64");
        assert_eq!(parse_range_header(&hdr), Some(ranges));
    }

    #[test]
    fn content_range_format() {
        assert_eq!(content_range(0, 256, 1000), "bytes 0-255/1000");
        assert_eq!(content_range(990, 10, 1000), "bytes 990-999/1000");
    }
}
