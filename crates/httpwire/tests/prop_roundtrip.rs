//! High-volume property tests for the HTTP wire layer, complementing
//! `proptest_parser.rs` with full serialize→parse *identity* (every field,
//! every header, both message kinds) and parser no-panic robustness against
//! mutated byte streams. Driven by the in-tree seeded PRNG; all cases are
//! deterministic. Combined volume exceeds 10k cases.

use bytes::Bytes;
use httpwire::{Method, Request, RequestParser, Response, ResponseParser, StatusCode, Version};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const REQUEST_CASES: usize = 4096;
const RESPONSE_CASES: usize = 3072;
const MUTATION_CASES: usize = 4096;

const METHODS: [Method; 4] = [Method::Get, Method::Head, Method::Post, Method::Put];
const VERSIONS: [Version; 2] = [Version::Http10, Version::Http11];
const STATUSES: [u16; 6] = [200, 206, 301, 302, 404, 500];

fn pick_char(rng: &mut SmallRng, alphabet: &[u8]) -> char {
    alphabet[rng.gen_range(0..alphabet.len())] as char
}

fn token(rng: &mut SmallRng) -> String {
    const FIRST: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz";
    const REST: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-";
    let mut s = String::new();
    s.push(pick_char(rng, FIRST));
    for _ in 0..rng.gen_range(0..12usize) {
        s.push(pick_char(rng, REST));
    }
    s
}

fn header_value(rng: &mut SmallRng) -> String {
    let mut s = String::new();
    for _ in 0..rng.gen_range(0..32usize) {
        s.push(rng.gen_range(b' '..=b'~') as char);
    }
    s.trim().to_string()
}

fn path(rng: &mut SmallRng) -> String {
    const CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789/._-";
    let mut s = String::from("/");
    for _ in 0..rng.gen_range(0..24usize) {
        s.push(pick_char(rng, CHARS));
    }
    s
}

fn random_bytes(rng: &mut SmallRng, max_len: usize) -> Vec<u8> {
    let len = rng.gen_range(0..max_len);
    (0..len).map(|_| rng.gen()).collect()
}

/// Header names that change framing or would collide with headers the
/// serializer manages itself.
fn reserved(name: &str) -> bool {
    name.eq_ignore_ascii_case("content-length") || name.eq_ignore_ascii_case("transfer-encoding")
}

fn headers_of(h: &httpwire::HeaderMap) -> Vec<(String, String)> {
    h.iter()
        .map(|hdr| (hdr.name.clone(), hdr.value.clone()))
        .collect()
}

/// Parse one message out of `wire` delivered in `frag`-sized pieces.
fn parse_request(wire: &[u8], frag: usize) -> Request {
    let mut parser = RequestParser::new();
    let mut parsed = None;
    for chunk in wire.chunks(frag) {
        parser.feed(chunk);
        if let Some(r) = parser.next().expect("valid wire image") {
            parsed = Some(r);
        }
    }
    if parsed.is_none() {
        parsed = parser.next().expect("valid wire image");
    }
    let parsed = parsed.expect("complete request parses");
    assert_eq!(parser.buffered(), 0, "no leftovers after one message");
    parsed
}

/// Serialize→parse must reproduce the request exactly: method, target,
/// version, the full ordered header list, and the body.
#[test]
fn request_serialize_parse_identity() {
    let mut rng = SmallRng::seed_from_u64(0x5CA1_E001);
    for case in 0..REQUEST_CASES {
        let method = METHODS[rng.gen_range(0..METHODS.len())];
        let version = VERSIONS[rng.gen_range(0..VERSIONS.len())];
        let mut req = Request::new(method, path(&mut rng), version);
        for _ in 0..rng.gen_range(0..6usize) {
            let name = token(&mut rng);
            if reserved(&name) {
                continue;
            }
            req.headers.append(&name, header_value(&mut rng));
        }
        if matches!(method, Method::Post | Method::Put) {
            let body = random_bytes(&mut rng, 384);
            // Set the framing header explicitly so the parsed header block
            // is byte-for-byte comparable to the one we built.
            req.headers.set("Content-Length", body.len().to_string());
            req.body = Bytes::from(body);
        }
        let frag = rng.gen_range(1..80usize);

        let parsed = parse_request(&req.to_bytes(), frag);
        assert_eq!(parsed.method, req.method, "case {case}");
        assert_eq!(parsed.target, req.target, "case {case}");
        assert_eq!(parsed.version, req.version, "case {case}");
        assert_eq!(
            headers_of(&parsed.headers),
            headers_of(&req.headers),
            "case {case}: header block must round-trip in order"
        );
        assert_eq!(&parsed.body[..], &req.body[..], "case {case}");
    }
}

/// The same identity property for responses, across versions, status codes
/// and request methods (HEAD responses carry no body on the wire).
#[test]
fn response_serialize_parse_identity() {
    let mut rng = SmallRng::seed_from_u64(0x5CA1_E002);
    for case in 0..RESPONSE_CASES {
        let version = VERSIONS[rng.gen_range(0..VERSIONS.len())];
        let status = StatusCode(STATUSES[rng.gen_range(0..STATUSES.len())]);
        let body = random_bytes(&mut rng, 512);
        let mut resp = Response::new(version, status)
            .with_header("Content-Length", body.len().to_string())
            .with_body(Bytes::from(body));
        for _ in 0..rng.gen_range(0..6usize) {
            let name = token(&mut rng);
            if reserved(&name) {
                continue;
            }
            resp.headers.append(&name, header_value(&mut rng));
        }
        let frag = rng.gen_range(1..80usize);

        let mut parser = ResponseParser::new();
        parser.expect(Method::Get);
        let wire = resp.to_bytes();
        let mut parsed = None;
        for chunk in wire.chunks(frag) {
            parser.feed(chunk);
            if let Some(r) = parser.next().expect("valid wire image") {
                parsed = Some(r);
            }
        }
        let parsed = parsed.expect("complete response parses");
        assert_eq!(parsed.version, resp.version, "case {case}");
        assert_eq!(parsed.status, resp.status, "case {case}");
        assert_eq!(
            headers_of(&parsed.headers),
            headers_of(&resp.headers),
            "case {case}"
        );
        assert_eq!(&parsed.body[..], &resp.body[..], "case {case}");
        assert_eq!(parser.buffered(), 0, "case {case}");
    }
}

/// Apply 1–4 random mutations (flips, truncations, insertions, deletions)
/// to a byte stream.
fn mutate(rng: &mut SmallRng, wire: &mut Vec<u8>) {
    for _ in 0..rng.gen_range(1..5usize) {
        if wire.is_empty() {
            wire.extend(random_bytes(rng, 16));
            continue;
        }
        match rng.gen_range(0..4u32) {
            0 => {
                let i = rng.gen_range(0..wire.len());
                wire[i] = rng.gen();
            }
            1 => {
                let i = rng.gen_range(0..wire.len());
                wire.truncate(i);
            }
            2 => {
                let i = rng.gen_range(0..=wire.len());
                let insert = random_bytes(rng, 12);
                wire.splice(i..i, insert);
            }
            _ => {
                let i = rng.gen_range(0..wire.len());
                let j = (i + rng.gen_range(1..16usize)).min(wire.len());
                wire.drain(i..j);
            }
        }
    }
}

fn drain_requests(parser: &mut RequestParser) {
    while let Ok(Some(_)) = parser.next() {}
}

fn drain_responses(parser: &mut ResponseParser) {
    while let Ok(Some(_)) = parser.next() {}
}

/// Mutated wire images — valid messages with bytes flipped, spliced or cut
/// — must never panic either parser, only parse or error. Mutating valid
/// traffic reaches far deeper parser states than pure random bytes.
#[test]
fn mutated_streams_never_panic() {
    let mut rng = SmallRng::seed_from_u64(0x5CA1_E003);
    for _ in 0..MUTATION_CASES {
        let method = METHODS[rng.gen_range(0..METHODS.len())];
        let mut req = Request::new(method, path(&mut rng), Version::Http11);
        for _ in 0..rng.gen_range(0..4usize) {
            req.headers.append(&token(&mut rng), header_value(&mut rng));
        }
        let body = random_bytes(&mut rng, 128);
        let resp = Response::new(Version::Http11, StatusCode(200))
            .with_header("Content-Length", body.len().to_string())
            .with_body(Bytes::from(body));

        let mut wire = req.to_bytes();
        wire.extend_from_slice(&resp.to_bytes());
        mutate(&mut rng, &mut wire);
        let frag = rng.gen_range(1..64usize);

        let mut rp = RequestParser::new();
        let mut sp = ResponseParser::new();
        sp.expect(method);
        sp.expect(Method::Get);
        for chunk in wire.chunks(frag) {
            rp.feed(chunk);
            drain_requests(&mut rp);
            sp.feed(chunk);
            drain_responses(&mut sp);
        }
        let _ = sp.finish();
    }
}
