//! Property tests for the HTTP message layer: serialization/parse
//! roundtrips under arbitrary network fragmentation, chunked-coding
//! roundtrips, and robustness against arbitrary bytes.

use bytes::Bytes;
use httpwire::{
    Method, Request, RequestParser, Response, ResponseParser, StatusCode, Version,
};
use proptest::prelude::*;

fn methods() -> impl Strategy<Value = Method> {
    prop_oneof![
        Just(Method::Get),
        Just(Method::Head),
        Just(Method::Post),
        Just(Method::Put),
    ]
}

fn token() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9-]{0,15}"
}

fn header_value() -> impl Strategy<Value = String> {
    "[ -~&&[^\r\n]]{0,40}".prop_map(|s| s.trim().to_string())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn request_roundtrip_under_fragmentation(
        method in methods(),
        path in "/[a-z0-9/._-]{0,30}",
        headers in proptest::collection::vec((token(), header_value()), 0..8),
        body in proptest::collection::vec(any::<u8>(), 0..256),
        frag in 1usize..64,
    ) {
        let mut req = Request::new(method, path.clone(), Version::Http11);
        for (name, value) in &headers {
            // Skip names that collide with framing headers.
            if name.eq_ignore_ascii_case("content-length")
                || name.eq_ignore_ascii_case("transfer-encoding") {
                continue;
            }
            req.headers.append(name, value.clone());
        }
        if method == Method::Post || method == Method::Put {
            req.body = Bytes::from(body.clone());
        }
        let wire = req.to_bytes();

        let mut parser = RequestParser::new();
        let mut parsed = None;
        for chunk in wire.chunks(frag) {
            parser.feed(chunk);
            if let Some(r) = parser.next().unwrap() {
                parsed = Some(r);
            }
        }
        // A final poll in case the last chunk completed it.
        if parsed.is_none() {
            parsed = parser.next().unwrap();
        }
        let parsed = parsed.expect("complete request parses");
        prop_assert_eq!(parsed.method, method);
        prop_assert_eq!(parsed.target, path);
        if method == Method::Post || method == Method::Put {
            prop_assert_eq!(&parsed.body[..], &body[..]);
        }
        prop_assert_eq!(parser.buffered(), 0);
    }

    #[test]
    fn pipelined_responses_roundtrip(
        bodies in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..200), 1..6),
        frag in 1usize..48,
    ) {
        let mut wire = Vec::new();
        let mut parser = ResponseParser::new();
        for body in &bodies {
            parser.expect(Method::Get);
            let resp = Response::new(Version::Http11, StatusCode::OK)
                .with_header("Content-Length", body.len().to_string())
                .with_body(Bytes::from(body.clone()));
            wire.extend_from_slice(&resp.to_bytes());
        }

        let mut got = Vec::new();
        for chunk in wire.chunks(frag) {
            parser.feed(chunk);
            while let Some(r) = parser.next().unwrap() {
                got.push(r);
            }
        }
        prop_assert_eq!(got.len(), bodies.len());
        for (resp, body) in got.iter().zip(&bodies) {
            prop_assert_eq!(&resp.body[..], &body[..]);
        }
    }

    #[test]
    fn chunked_roundtrip_any_chunk_size(
        body in proptest::collection::vec(any::<u8>(), 0..600),
        chunk_size in 1usize..128,
        frag in 1usize..32,
    ) {
        let enc = httpwire::chunked::encode(&body, chunk_size);
        let mut resp_wire = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec();
        resp_wire.extend_from_slice(&enc);
        let mut parser = ResponseParser::new();
        parser.expect(Method::Get);
        let mut got = None;
        for chunk in resp_wire.chunks(frag) {
            parser.feed(chunk);
            if let Some(r) = parser.next().unwrap() {
                got = Some(r);
            }
        }
        let got = got.expect("chunked response completes");
        prop_assert_eq!(&got.body[..], &body[..]);
    }

    #[test]
    fn arbitrary_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut rp = RequestParser::new();
        rp.feed(&data);
        let _ = rp.next();
        let mut sp = ResponseParser::new();
        sp.expect(Method::Get);
        sp.feed(&data);
        let _ = sp.next();
        let _ = sp.finish();
    }

    #[test]
    fn http_dates_roundtrip(secs in 0u64..4_000_000_000) {
        let s = httpwire::format_http_date(secs);
        prop_assert_eq!(httpwire::parse_http_date(&s), Some(secs));
    }

    #[test]
    fn range_headers_roundtrip(first in 0u64..100_000, len in 1u64..100_000) {
        let hdr = httpwire::range::format_range_header(&[httpwire::ByteRange::FromTo(
            first,
            Some(first + len - 1),
        )]);
        let parsed = httpwire::parse_range_header(&hdr).expect("parses");
        prop_assert_eq!(parsed.len(), 1);
        let resolved = parsed[0].resolve(first + len).expect("satisfiable");
        prop_assert_eq!(resolved, (first, len));
    }
}
