//! Property-style tests for the HTTP message layer, driven by a
//! deterministic seeded PRNG (the build environment has no crates.io
//! access, so `proptest` is unavailable): serialization/parse roundtrips
//! under arbitrary network fragmentation, chunked-coding roundtrips, and
//! robustness against arbitrary bytes.

use bytes::Bytes;
use httpwire::{Method, Request, RequestParser, Response, ResponseParser, StatusCode, Version};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const METHODS: [Method; 4] = [Method::Get, Method::Head, Method::Post, Method::Put];

fn pick_char(rng: &mut SmallRng, alphabet: &[u8]) -> char {
    alphabet[rng.gen_range(0..alphabet.len())] as char
}

fn token(rng: &mut SmallRng) -> String {
    const FIRST: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz";
    const REST: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-";
    let mut s = String::new();
    s.push(pick_char(rng, FIRST));
    for _ in 0..rng.gen_range(0..16usize) {
        s.push(pick_char(rng, REST));
    }
    s
}

fn header_value(rng: &mut SmallRng) -> String {
    // Printable ASCII (no CR/LF), then trimmed like the proptest strategy.
    let mut s = String::new();
    for _ in 0..rng.gen_range(0..41usize) {
        s.push(rng.gen_range(b' '..=b'~') as char);
    }
    s.trim().to_string()
}

fn path(rng: &mut SmallRng) -> String {
    const CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789/._-";
    let mut s = String::from("/");
    for _ in 0..rng.gen_range(0..31usize) {
        s.push(pick_char(rng, CHARS));
    }
    s
}

fn random_bytes(rng: &mut SmallRng, max_len: usize) -> Vec<u8> {
    let len = rng.gen_range(0..max_len);
    (0..len).map(|_| rng.gen()).collect()
}

#[test]
fn request_roundtrip_under_fragmentation() {
    let mut rng = SmallRng::seed_from_u64(0x0047_7401);
    for case in 0..64 {
        let method = METHODS[rng.gen_range(0..METHODS.len())];
        let target = path(&mut rng);
        let headers: Vec<(String, String)> = (0..rng.gen_range(0..8usize))
            .map(|_| (token(&mut rng), header_value(&mut rng)))
            .collect();
        let body = random_bytes(&mut rng, 256);
        let frag = rng.gen_range(1..64usize);

        let mut req = Request::new(method, target.clone(), Version::Http11);
        for (name, value) in &headers {
            // Skip names that collide with framing headers.
            if name.eq_ignore_ascii_case("content-length")
                || name.eq_ignore_ascii_case("transfer-encoding")
            {
                continue;
            }
            req.headers.append(name, value.clone());
        }
        if method == Method::Post || method == Method::Put {
            req.body = Bytes::from(body.clone());
        }
        let wire = req.to_bytes();

        let mut parser = RequestParser::new();
        let mut parsed = None;
        for chunk in wire.chunks(frag) {
            parser.feed(chunk);
            if let Some(r) = parser.next().unwrap() {
                parsed = Some(r);
            }
        }
        // A final poll in case the last chunk completed it.
        if parsed.is_none() {
            parsed = parser.next().unwrap();
        }
        let parsed = parsed.expect("complete request parses");
        assert_eq!(parsed.method, method, "case {case}");
        assert_eq!(parsed.target, target, "case {case}");
        if method == Method::Post || method == Method::Put {
            assert_eq!(&parsed.body[..], &body[..], "case {case}");
        }
        assert_eq!(parser.buffered(), 0, "case {case}");
    }
}

#[test]
fn pipelined_responses_roundtrip() {
    let mut rng = SmallRng::seed_from_u64(0x0047_7402);
    for case in 0..64 {
        let bodies: Vec<Vec<u8>> = (0..rng.gen_range(1..6usize))
            .map(|_| random_bytes(&mut rng, 200))
            .collect();
        let frag = rng.gen_range(1..48usize);

        let mut wire = Vec::new();
        let mut parser = ResponseParser::new();
        for body in &bodies {
            parser.expect(Method::Get);
            let resp = Response::new(Version::Http11, StatusCode::OK)
                .with_header("Content-Length", body.len().to_string())
                .with_body(Bytes::from(body.clone()));
            wire.extend_from_slice(&resp.to_bytes());
        }

        let mut got = Vec::new();
        for chunk in wire.chunks(frag) {
            parser.feed(chunk);
            while let Some(r) = parser.next().unwrap() {
                got.push(r);
            }
        }
        assert_eq!(got.len(), bodies.len(), "case {case}");
        for (resp, body) in got.iter().zip(&bodies) {
            assert_eq!(&resp.body[..], &body[..], "case {case}");
        }
    }
}

#[test]
fn chunked_roundtrip_any_chunk_size() {
    let mut rng = SmallRng::seed_from_u64(0x0047_7403);
    for case in 0..64 {
        let body = random_bytes(&mut rng, 600);
        let chunk_size = rng.gen_range(1..128usize);
        let frag = rng.gen_range(1..32usize);

        let enc = httpwire::chunked::encode(&body, chunk_size);
        let mut resp_wire = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec();
        resp_wire.extend_from_slice(&enc);
        let mut parser = ResponseParser::new();
        parser.expect(Method::Get);
        let mut got = None;
        for chunk in resp_wire.chunks(frag) {
            parser.feed(chunk);
            if let Some(r) = parser.next().unwrap() {
                got = Some(r);
            }
        }
        let got = got.expect("chunked response completes");
        assert_eq!(&got.body[..], &body[..], "case {case}");
    }
}

#[test]
fn arbitrary_bytes_never_panic() {
    let mut rng = SmallRng::seed_from_u64(0x0047_7404);
    for _ in 0..64 {
        let data = random_bytes(&mut rng, 512);
        let mut rp = RequestParser::new();
        rp.feed(&data);
        let _ = rp.next();
        let mut sp = ResponseParser::new();
        sp.expect(Method::Get);
        sp.feed(&data);
        let _ = sp.next();
        let _ = sp.finish();
    }
}

#[test]
fn http_dates_roundtrip() {
    let mut rng = SmallRng::seed_from_u64(0x0047_7405);
    for _ in 0..64 {
        let secs = rng.gen_range(0u64..4_000_000_000);
        let s = httpwire::format_http_date(secs);
        assert_eq!(httpwire::parse_http_date(&s), Some(secs));
    }
}

#[test]
fn range_headers_roundtrip() {
    let mut rng = SmallRng::seed_from_u64(0x0047_7406);
    for _ in 0..64 {
        let first = rng.gen_range(0u64..100_000);
        let len = rng.gen_range(1u64..100_000);
        let hdr = httpwire::range::format_range_header(&[httpwire::ByteRange::FromTo(
            first,
            Some(first + len - 1),
        )]);
        let parsed = httpwire::parse_range_header(&hdr).expect("parses");
        assert_eq!(parsed.len(), 1);
        let resolved = parsed[0].resolve(first + len).expect("satisfiable");
        assert_eq!(resolved, (first, len));
    }
}
