//! The server's content store: entities with validators and optional
//! pre-deflated variants.
//!
//! The paper's compression test serves a *pre-computed* deflated copy of
//! the Microscape HTML ("the server does not perform on-the-fly
//! compression") — the store models exactly that: each entity may carry a
//! deflate-encoded alternate body prepared at store-build time.

use bytes::Bytes;
use httpwire::validators::{ETag, Validators};
use std::collections::HashMap;
use std::sync::Arc;

/// One servable entity.
#[derive(Debug, Clone)]
pub struct Entity {
    /// The identity (uncompressed) representation.
    pub body: Bytes,
    /// MIME type served in `Content-Type`.
    pub content_type: String,
    /// Cache validators (ETag / Last-Modified).
    pub validators: Validators,
    /// Pre-computed `Content-Encoding: deflate` body, if enabled for this
    /// content type.
    pub deflated: Option<Bytes>,
}

impl Entity {
    /// Build an entity with derived validators (strong ETag + the given
    /// modification time).
    pub fn new(body: impl Into<Bytes>, content_type: &str, mtime: u64) -> Entity {
        let body = body.into();
        Entity {
            validators: Validators {
                etag: Some(ETag::derive(&body, mtime)),
                last_modified: Some(mtime),
            },
            body,
            content_type: content_type.to_string(),
            deflated: None,
        }
    }

    /// Attach a pre-computed deflated variant.
    pub fn with_deflate(mut self) -> Entity {
        self.deflated = Some(Bytes::from(httpwire::coding::deflate_entity(&self.body)));
        self
    }
}

/// A path → entity map shared by server instances.
#[derive(Debug, Default)]
pub struct SiteStore {
    // xtask: allow(hash-collections): keyed lookup only (get/insert by
    // path); never iterated, so map order cannot leak into a run.
    entities: HashMap<String, Entity>,
}

impl SiteStore {
    /// Create a new, empty instance.
    pub fn new() -> Self {
        SiteStore::default()
    }

    /// Insert an entity at a path.
    pub fn insert(&mut self, path: &str, entity: Entity) {
        self.entities.insert(path.to_string(), entity);
    }

    /// Look up an entity by request path.
    pub fn get(&self, path: &str) -> Option<&Entity> {
        self.entities.get(path)
    }

    /// Number of contained elements.
    pub fn len(&self) -> usize {
        self.entities.len()
    }

    /// True when nothing is contained.
    pub fn is_empty(&self) -> bool {
        self.entities.is_empty()
    }

    /// Total body bytes stored (identity representations).
    pub fn total_bytes(&self) -> usize {
        self.entities.values().map(|e| e.body.len()).sum()
    }

    /// Wrap in an `Arc` for sharing across server instances.
    pub fn into_shared(self) -> Arc<SiteStore> {
        Arc::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entity_gets_validators() {
        let e = Entity::new(&b"hello"[..], "text/plain", 1000);
        assert!(e.validators.etag.is_some());
        assert_eq!(e.validators.last_modified, Some(1000));
    }

    #[test]
    fn deflate_variant_smaller_for_html() {
        let html = "<p>compressible compressible compressible</p>".repeat(50);
        let e = Entity::new(html.clone().into_bytes(), "text/html", 1000).with_deflate();
        let d = e.deflated.as_ref().unwrap();
        assert!(d.len() < html.len() / 3);
        // And it round-trips.
        let back = httpwire::coding::decode(httpwire::ContentCoding::Deflate, d).unwrap();
        assert_eq!(back, html.as_bytes());
    }

    #[test]
    fn store_lookup() {
        let mut s = SiteStore::new();
        s.insert("/a", Entity::new(&b"A"[..], "text/plain", 1));
        s.insert("/b", Entity::new(&b"BB"[..], "text/plain", 1));
        assert_eq!(s.len(), 2);
        assert_eq!(s.total_bytes(), 3);
        assert!(s.get("/a").is_some());
        assert!(s.get("/c").is_none());
    }
}
