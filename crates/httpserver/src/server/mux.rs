//! The server's multiplexed dispatcher: connections whose first bytes
//! are the `httpmux` preface are switched from the HTTP/1.x parser to a
//! [`MuxConn`] engine. Requests arrive as HEADERS frames, are costed on
//! the same single-CPU service queue as HTTP/1.x requests, and are
//! answered through [`HttpServer::respond`] — one response generator
//! for every transport.
//!
//! Push policy: when a 200 `text/html` response is generated on a
//! parent stream and the client advertised ENABLE_PUSH (and the config
//! enables it), the body is scanned for inline images and stylesheet
//! links; every one present in the store is promised *before* the
//! parent HEADERS go out and then serviced as a normal CPU-costed
//! response on its even stream. A client RST on a promised stream
//! cancels it, and the DATA bytes already emitted are counted as waste.

use super::*;
use httpmux::{MuxConn, MuxEvent};

/// Mux state attached to a connection after preface detection.
#[derive(Debug)]
pub(super) struct MuxServerConn {
    pub(super) engine: MuxConn,
    /// Client advertised ENABLE_PUSH and the config allows pushing.
    push_ok: bool,
    /// Responses (requests + pushes) not yet generated.
    pub(super) svc: u32,
    /// Paths already promised on this connection.
    pushed_paths: std::collections::BTreeSet<String>,
}

impl HttpServer {
    /// Preface matched: switch the connection to framed mode and feed
    /// it everything received so far (preface included).
    pub(super) fn mux_start(&mut self, ctx: &mut Ctx<'_>, sock: SocketId, bytes: &[u8]) {
        if let Some(conn) = self.conns.get_mut(&sock) {
            conn.mux = Some(Box::new(MuxServerConn {
                engine: MuxConn::server(),
                push_ok: false,
                svc: 0,
                pushed_paths: std::collections::BTreeSet::new(),
            }));
        }
        self.mux_on_data(ctx, sock, bytes);
    }

    /// Bytes arrived on a framed connection.
    pub(super) fn mux_on_data(&mut self, ctx: &mut Ctx<'_>, sock: SocketId, data: &[u8]) {
        let Some(m) = self.conns.get_mut(&sock).and_then(|c| c.mux.as_deref_mut()) else {
            return;
        };
        m.engine.feed(data);
        loop {
            let Some(m) = self.conns.get_mut(&sock).and_then(|c| c.mux.as_deref_mut()) else {
                return;
            };
            let Some(ev) = m.engine.poll_event() else {
                break;
            };
            match ev {
                MuxEvent::Settings { enable_push } => {
                    m.push_ok = enable_push && self.config.mux_push;
                }
                MuxEvent::Headers { stream, fields, .. } => {
                    let Some(req) = request_from_fields(&fields) else {
                        // Unintelligible request stream: refuse it.
                        m.engine.reset_stream(stream, httpmux::ERR_PROTOCOL);
                        self.stats.responses_4xx += 1;
                        continue;
                    };
                    m.svc += 1;
                    self.schedule_request(ctx, sock, req, Some(stream), false);
                }
                MuxEvent::Data { .. } => {
                    // Request bodies are outside the experiments' scope.
                }
                MuxEvent::Reset {
                    stream, data_sent, ..
                } => {
                    if stream % 2 == 0 {
                        // Client refused one of our pushes; the DATA bytes
                        // already on the wire were pure waste.
                        self.stats.cancelled_pushes += 1;
                        self.stats.cancelled_push_bytes += data_sent;
                    }
                }
                MuxEvent::PushPromise { .. } | MuxEvent::CancelledData { .. } => {
                    // Clients cannot push.
                }
                MuxEvent::ProtocolError(_) => {
                    ctx.abort(sock);
                    self.remove_conn(sock);
                    self.promote_parked(ctx);
                    return;
                }
            }
        }
        self.account(sock);
        self.mux_flush(ctx, sock);
    }

    /// A service timer fired for a stream: generate the response, run
    /// push discovery, and emit the frames.
    pub(super) fn queue_mux_response(
        &mut self,
        ctx: &mut Ctx<'_>,
        sock: SocketId,
        stream: u32,
        req: Request,
        is_push: bool,
    ) {
        let Some(m) = self.conns.get_mut(&sock).and_then(|c| c.mux.as_deref_mut()) else {
            return; // connection vanished while the request was in service
        };
        m.svc = m.svc.saturating_sub(1);
        if m.engine.is_cancelled(stream) {
            // The stream was reset while the response was being computed:
            // the CPU time is spent, but nothing goes on the wire.
            self.mux_flush(ctx, sock);
            return;
        }
        let push_ok = m.push_ok;
        let now = ctx.now();
        let resp = self.respond(&req, now);
        self.stats.requests += 1;
        if is_push {
            self.stats.pushed_responses += 1;
            self.stats.pushed_bytes += resp.body.len() as u64;
        }

        // Push discovery: scan served HTML for subresources we hold.
        let mut push_paths: Vec<String> = Vec::new();
        if !is_push
            && push_ok
            && resp.status == StatusCode::OK
            && resp.headers.get("Content-Type") == Some("text/html")
            && !resp.headers.contains("Content-Encoding")
        {
            let html = String::from_utf8_lossy(&resp.body);
            let m = self
                .conns
                .get_mut(&sock)
                .and_then(|c| c.mux.as_deref_mut())
                .expect("mux conn still present");
            webcontent::html::for_each_subresource(&html, |path| {
                if !m.pushed_paths.contains(path) && !push_paths.iter().any(|p| p == path) {
                    push_paths.push(path.to_string());
                }
            });
            push_paths.retain(|p| self.store.get(p).is_some());
        }

        // Emit: promises first (they must precede the parent HEADERS),
        // then the parent response.
        let mut promised_streams: Vec<(u32, String)> = Vec::new();
        {
            let m = self
                .conns
                .get_mut(&sock)
                .and_then(|c| c.mux.as_deref_mut())
                .expect("mux conn still present");
            for path in push_paths {
                let fields = vec![
                    (":method".to_string(), "GET".to_string()),
                    (":path".to_string(), path.clone()),
                ];
                let promised = m.engine.push_promise(stream, &fields);
                m.pushed_paths.insert(path.clone());
                promised_streams.push((promised, path));
            }
            let mut fields = vec![(":status".to_string(), resp.status.0.to_string())];
            for h in resp.headers.iter() {
                fields.push((h.name.clone(), h.value.clone()));
            }
            m.engine.send_headers(stream, &fields, resp.body.is_empty());
            if !resp.body.is_empty() {
                m.engine.send_data(stream, &resp.body, true);
            }
        }

        // Pushed responses cost CPU like any other: queue each behind
        // the service queue.
        for (promised, path) in promised_streams {
            if let Some(m) = self.conns.get_mut(&sock).and_then(|c| c.mux.as_deref_mut()) {
                m.svc += 1;
            }
            let push_req = Request::new(Method::Get, path, Version::Http11);
            self.schedule_request(ctx, sock, push_req, Some(promised), true);
        }

        self.account(sock);
        self.mux_flush(ctx, sock);
    }

    /// Drain engine output through the socket; half-close once the
    /// client has finished and everything is answered and drained.
    pub(super) fn mux_flush(&mut self, ctx: &mut Ctx<'_>, sock: SocketId) {
        let Some(conn) = self.conns.get_mut(&sock) else {
            return;
        };
        let Some(m) = conn.mux.as_deref_mut() else {
            return;
        };
        loop {
            if conn.outbuf.is_empty() && m.engine.has_output() {
                m.engine.take_output(64 * 1024, &mut conn.outbuf);
            }
            if conn.outbuf.is_empty() {
                break;
            }
            let n = ctx.send(sock, &conn.outbuf);
            if n == 0 {
                break; // socket buffer full: resume on SendSpace
            }
            conn.outbuf.drain(..n);
        }
        let done = conn.peer_closed
            && m.svc == 0
            && conn.outbuf.is_empty()
            && !m.engine.has_output()
            && m.engine.idle();
        self.account(sock);
        if done {
            ctx.shutdown_write(sock);
        }
    }
}

/// Synthesize an `httpwire::Request` from a HEADERS field list so the
/// shared `respond()` path (conditionals, ranges, HEAD, deflate) works
/// unchanged on framed requests.
fn request_from_fields(fields: &[(String, String)]) -> Option<Request> {
    let mut method = None;
    let mut path = None;
    for (name, value) in fields {
        match name.as_str() {
            ":method" => {
                method = match value.as_str() {
                    "GET" => Some(Method::Get),
                    "HEAD" => Some(Method::Head),
                    "POST" => Some(Method::Post),
                    "PUT" => Some(Method::Put),
                    "OPTIONS" => Some(Method::Options),
                    "TRACE" => Some(Method::Trace),
                    _ => None,
                }
            }
            ":path" => path = Some(value.clone()),
            _ => {}
        }
    }
    let mut req = Request::new(method?, path?, Version::Http11);
    for (name, value) in fields {
        if !name.starts_with(':') {
            req.headers.append(name, value.clone());
        }
    }
    Some(req)
}
