//! Server behaviour profiles.
//!
//! The paper compares two real servers — W3C's Jigsaw 1.06 (interpreted
//! Java) and Apache 1.2b10 (C) — and tunes both during the study. A
//! profile captures the behavioural knobs that mattered:
//!
//! * response output buffering ("the server maintains a response buffer
//!   that it flushes either when full, or when there are no more requests
//!   coming in on that connection, or before it goes idle");
//! * per-request service time (Jigsaw "ran interpreted in our tests" and
//!   lost its early lead over the optimized Apache);
//! * the Nagle algorithm (`TCP_NODELAY`, "the first change to the server");
//! * a maximum number of requests per connection (Apache 1.2b2 "processes
//!   at most five requests before terminating a TCP connection");
//! * naive versus independent-half close (the RST hazard).

use netsim::SimDuration;

/// Which product the profile models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServerKind {
    /// W3C Jigsaw 1.06 (Java, interpreted): slower service, more verbose
    /// response headers.
    Jigsaw,
    /// Apache 1.2b10 (C): fast service, lean headers.
    Apache,
}

impl ServerKind {
    /// The `Server` header value.
    pub fn server_header(self) -> &'static str {
        match self {
            ServerKind::Jigsaw => "Jigsaw/1.06",
            ServerKind::Apache => "Apache/1.2b10",
        }
    }
}

/// What happens to a connection accepted beyond `max_connections`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Refuse it immediately with a RST (the client sees a hard failure
    /// and must reconnect).
    Rst,
    /// Park it unserviced until a slot frees; TCP receive-window
    /// backpressure holds the client's request bytes in the meantime.
    Queue,
}

/// Full server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Which product this profile models.
    pub kind: ServerKind,
    /// Listening port.
    pub port: u16,
    /// Set TCP_NODELAY on accepted connections (the paper's recommended
    /// setting for buffered implementations).
    pub nodelay: bool,
    /// Response buffer size; the buffer also flushes when the connection
    /// goes idle (no outstanding requests).
    pub output_buffer: usize,
    /// Close the connection after this many requests (the early-Apache
    /// behaviour that exposed the RST hazard). `None` = unlimited.
    pub max_requests_per_connection: Option<u32>,
    /// When closing, naively close both halves at once (true) instead of
    /// half-closing and draining the read side (false).
    pub naive_close: bool,
    /// CPU time to serve a full GET.
    pub service_time_get: SimDuration,
    /// CPU time to serve a cache validation (304) or HEAD.
    pub service_time_validate: SimDuration,
    /// CPU time consumed accepting each connection (process fork /
    /// thread spawn) — the per-connection tax that HTTP/1.0's
    /// connection-per-request behaviour pays 43 times.
    pub per_connection_cost: SimDuration,
    /// Serve pre-computed deflated bodies for `text/html` when the client
    /// accepts the deflate coding.
    pub serve_deflate: bool,
    /// Base of the virtual calendar for the `Date` header (epoch seconds
    /// at simulation time zero).
    pub date_base: u64,
    /// Kernel SYN-queue depth for the listening socket; overflowing SYNs
    /// are silently dropped and must be retransmitted. `None` = unbounded
    /// (the historical behaviour).
    pub listen_backlog: Option<u32>,
    /// Application-level cap on concurrently serviced connections; `None`
    /// = unlimited.
    pub max_connections: Option<u32>,
    /// What to do with connections accepted past `max_connections`.
    pub admission_policy: AdmissionPolicy,
    /// On multiplexed connections from push-enabled clients, push inline
    /// images and stylesheets discovered in served HTML.
    pub mux_push: bool,
}

impl ServerConfig {
    /// The Jigsaw profile as tuned in the paper's final test rounds.
    pub fn jigsaw(port: u16) -> ServerConfig {
        ServerConfig {
            kind: ServerKind::Jigsaw,
            port,
            nodelay: true,
            output_buffer: 8 * 1024,
            max_requests_per_connection: None,
            naive_close: false,
            // Interpreted Java on a 1997 SPARC: a few ms of CPU per
            // operation.
            service_time_get: SimDuration::from_millis(8),
            service_time_validate: SimDuration::from_millis(5),
            per_connection_cost: SimDuration::from_millis(7),
            serve_deflate: false,
            date_base: 865_209_600, // 2 June 1997
            listen_backlog: None,
            max_connections: None,
            admission_policy: AdmissionPolicy::Rst,
            mux_push: false,
        }
    }

    /// Jigsaw as it behaved in the paper's *initial* investigations
    /// (Table 3): interpreted, unoptimized buffers, notably slower per
    /// request than the tuned version the final tables use.
    pub fn jigsaw_initial(port: u16) -> ServerConfig {
        ServerConfig {
            service_time_get: SimDuration::from_millis(20),
            service_time_validate: SimDuration::from_millis(30),
            per_connection_cost: SimDuration::from_millis(10),
            ..ServerConfig::jigsaw(port)
        }
    }

    /// The Apache profile (1.2b10, after the Apache group's fixes).
    pub fn apache(port: u16) -> ServerConfig {
        ServerConfig {
            kind: ServerKind::Apache,
            port,
            nodelay: true,
            output_buffer: 8 * 1024,
            max_requests_per_connection: None,
            naive_close: false,
            service_time_get: SimDuration::from_millis(4),
            service_time_validate: SimDuration::from_millis(2),
            per_connection_cost: SimDuration::from_millis(5),
            serve_deflate: false,
            date_base: 865_209_600,
            listen_backlog: None,
            max_connections: None,
            admission_policy: AdmissionPolicy::Rst,
            mux_push: false,
        }
    }

    /// Builder-style toggles.
    pub fn with_deflate(mut self, on: bool) -> Self {
        self.serve_deflate = on;
        self
    }

    /// Builder-style TCP_NODELAY toggle.
    pub fn with_nodelay(mut self, on: bool) -> Self {
        self.nodelay = on;
        self
    }

    /// Builder-style per-connection request limit.
    pub fn with_max_requests(mut self, n: u32) -> Self {
        self.max_requests_per_connection = Some(n);
        self
    }

    /// Builder-style naive-close toggle (the RST hazard).
    pub fn with_naive_close(mut self, on: bool) -> Self {
        self.naive_close = on;
        self
    }

    /// Builder-style response-buffer size override.
    pub fn with_output_buffer(mut self, bytes: usize) -> Self {
        self.output_buffer = bytes;
        self
    }

    /// Builder-style listen-backlog bound (SYN-queue depth).
    pub fn with_listen_backlog(mut self, backlog: u32) -> Self {
        self.listen_backlog = Some(backlog);
        self
    }

    /// Builder-style concurrent-connection cap with its overflow policy.
    pub fn with_max_connections(mut self, cap: u32, policy: AdmissionPolicy) -> Self {
        self.max_connections = Some(cap);
        self.admission_policy = policy;
        self
    }

    /// Builder-style server-push toggle for multiplexed connections.
    pub fn with_mux_push(mut self, on: bool) -> Self {
        self.mux_push = on;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_differ_in_speed() {
        let j = ServerConfig::jigsaw(80);
        let a = ServerConfig::apache(80);
        assert!(j.service_time_get > a.service_time_get);
        assert_eq!(j.kind.server_header(), "Jigsaw/1.06");
        assert_eq!(a.kind.server_header(), "Apache/1.2b10");
    }

    #[test]
    fn builders_compose() {
        let c = ServerConfig::apache(8080)
            .with_deflate(true)
            .with_max_requests(5)
            .with_naive_close(true)
            .with_nodelay(false)
            .with_output_buffer(1024);
        assert!(c.serve_deflate);
        assert_eq!(c.max_requests_per_connection, Some(5));
        assert!(c.naive_close);
        assert!(!c.nodelay);
        assert_eq!(c.output_buffer, 1024);
        assert_eq!(c.port, 8080);
    }
}
