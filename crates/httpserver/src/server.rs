//! The HTTP origin server as a simulated application.
//!
//! One [`HttpServer`] instance drives one host. It implements the
//! behaviours the paper studied server-side:
//!
//! * **response buffering** — responses accumulate in a per-connection
//!   output buffer flushed when full or when the connection goes idle,
//!   which is what aggregates many 304s into single segments;
//! * **a global CPU model** — per-request service time serializes across
//!   connections (the testbed server was a single-CPU SPARC), so four
//!   parallel HTTP/1.0 connections do not get a 4× CPU speedup;
//! * **connection limits and the close hazard** — an optional
//!   max-requests-per-connection with either a correct independent
//!   half-close (drain the read side) or the naive simultaneous close
//!   that RSTs pipelined clients;
//! * **conditional requests, HEAD, byte ranges, and pre-deflated
//!   entities**.

mod mux;

use crate::config::{AdmissionPolicy, ServerConfig, ServerKind};
use crate::store::SiteStore;
use bytes::Bytes;
use httpwire::coding;
use httpwire::range;
use httpwire::validators::{evaluate_conditional, if_range_matches, CondResult};
use httpwire::{format_http_date, Method, Request, RequestParser, Response, StatusCode, Version};
use netsim::sim::{App, AppEvent, Ctx};
use netsim::{Metric, SimTime, SocketId};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// Counters exposed after a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: u64,
    /// Requests answered.
    pub requests: u64,
    /// The responses 200.
    pub responses_200: u64,
    /// The responses 206.
    pub responses_206: u64,
    /// The responses 304.
    pub responses_304: u64,
    /// The responses 4xx.
    pub responses_4xx: u64,
    /// Entity bytes transmitted.
    pub body_bytes_sent: u64,
    /// Responses served with the deflate coding.
    pub deflate_responses: u64,
    /// Connections closed by the per-connection request limit.
    pub connections_closed_by_limit: u64,
    /// Connections refused (RST) at the `max_connections` cap.
    pub refused_connections: u64,
    /// Connections parked behind the `max_connections` cap before being
    /// serviced.
    pub queued_connections: u64,
    /// High-water mark of concurrently serviced connections.
    pub peak_connections: u64,
    /// Largest buffer footprint (output buffer + parser backlog) any
    /// single connection reached, in bytes.
    pub peak_conn_memory: u64,
    /// Largest aggregate buffer footprint across all connections, in
    /// bytes.
    pub peak_total_memory: u64,
    /// Responses pushed unsolicited on multiplexed connections.
    pub pushed_responses: u64,
    /// Entity bytes in pushed responses.
    pub pushed_bytes: u64,
    /// Pushes the client refused with RST_STREAM.
    pub cancelled_pushes: u64,
    /// DATA bytes already emitted on pushes the client cancelled (pure
    /// wire waste).
    pub cancelled_push_bytes: u64,
}

#[derive(Debug)]
struct Conn {
    parser: RequestParser,
    /// Bytes generated but not yet accepted by the socket.
    outbuf: Vec<u8>,
    /// Requests received but not yet answered.
    in_service: u32,
    /// Responses generated on this connection.
    served: u32,
    /// We have decided to close once the buffer drains.
    closing: bool,
    /// We half-closed and are draining (ignoring) further requests.
    draining: bool,
    peer_closed: bool,
    /// Buffer bytes (output + parser backlog) currently charged to this
    /// connection in the server's memory accounting.
    mem: u64,
    /// First bytes received, held until we know whether they are an HTTP
    /// request line or the `httpmux` connection preface.
    pre: Vec<u8>,
    /// The HTTP-or-mux decision has been made.
    decided: bool,
    /// Framed-transport state once the mux preface has been seen.
    mux: Option<Box<mux::MuxServerConn>>,
}

impl Conn {
    fn new() -> Conn {
        Conn {
            parser: RequestParser::new(),
            outbuf: Vec::new(),
            in_service: 0,
            served: 0,
            closing: false,
            draining: false,
            peer_closed: false,
            mem: 0,
            pre: Vec::new(),
            decided: false,
            mux: None,
        }
    }
}

/// The server application.
pub struct HttpServer {
    config: ServerConfig,
    store: Arc<SiteStore>,
    conns: BTreeMap<SocketId, Conn>,
    /// Accepted connections parked behind the `max_connections` cap
    /// (Queue policy); not read from until a service slot frees.
    parked: VecDeque<SocketId>,
    /// Aggregate buffer bytes across all serviced connections.
    total_mem: u64,
    /// Service-completion timers: token → (connection, request, mux
    /// stream if framed, whether this is a server push).
    pending: BTreeMap<u64, (SocketId, Request, Option<u32>, bool)>,
    next_token: u64,
    /// The single-CPU service queue.
    cpu_busy_until: SimTime,
    /// Run statistics.
    pub stats: ServerStats,
}

impl HttpServer {
    /// Create a new, empty instance.
    pub fn new(config: ServerConfig, store: Arc<SiteStore>) -> HttpServer {
        HttpServer {
            config,
            store,
            conns: BTreeMap::new(),
            parked: VecDeque::new(),
            total_mem: 0,
            pending: BTreeMap::new(),
            next_token: 1,
            cpu_busy_until: SimTime::ZERO,
            stats: ServerStats::default(),
        }
    }

    /// The configuration this server runs with.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Virtual wall-clock for the `Date` header.
    fn http_date(&self, now: SimTime) -> String {
        format_http_date(self.config.date_base + now.as_secs_f64() as u64)
    }

    /// Recompute the connection's buffer footprint and fold the change
    /// into the aggregate and peak counters.
    fn account(&mut self, sock: SocketId) {
        let Some(conn) = self.conns.get_mut(&sock) else {
            return;
        };
        let mem = conn.outbuf.len() as u64
            + conn.parser.buffered() as u64
            + conn.pre.len() as u64
            + conn.mux.as_ref().map_or(0, |m| {
                (m.engine.output_len() + m.engine.pending_send_bytes()) as u64
            });
        self.total_mem = self.total_mem - conn.mem + mem;
        conn.mem = mem;
        self.stats.peak_conn_memory = self.stats.peak_conn_memory.max(mem);
        self.stats.peak_total_memory = self.stats.peak_total_memory.max(self.total_mem);
    }

    /// Drop a connection from service, releasing its memory charge.
    fn remove_conn(&mut self, sock: SocketId) {
        if let Some(conn) = self.conns.remove(&sock) {
            self.total_mem -= conn.mem;
        }
    }

    /// Begin servicing an accepted connection.
    fn admit(&mut self, ctx: &mut Ctx<'_>, sock: SocketId) {
        self.stats.connections += 1;
        ctx.set_nodelay(sock, self.config.nodelay);
        self.conns.insert(sock, Conn::new());
        self.stats.peak_connections = self.stats.peak_connections.max(self.conns.len() as u64);
        // Accepting costs CPU (fork / thread spawn): requests on any
        // connection queue behind it.
        let now = ctx.now();
        self.cpu_busy_until = self.cpu_busy_until.max(now) + self.config.per_connection_cost;
    }

    /// Move parked connections into service while slots are free.
    fn promote_parked(&mut self, ctx: &mut Ctx<'_>) {
        while let Some(cap) = self.config.max_connections {
            if self.conns.len() >= cap as usize {
                return;
            }
            let Some(sock) = self.parked.pop_front() else {
                return;
            };
            self.admit(ctx, sock);
            // Bytes the client sent while the connection sat parked are
            // waiting in the socket's receive buffer.
            self.on_readable(ctx, sock);
        }
    }

    fn schedule_request(
        &mut self,
        ctx: &mut Ctx<'_>,
        sock: SocketId,
        req: Request,
        stream: Option<u32>,
        is_push: bool,
    ) {
        let service = match req.method {
            Method::Head => self.config.service_time_validate,
            _ if req.headers.contains("If-None-Match")
                || req.headers.contains("If-Modified-Since") =>
            {
                self.config.service_time_validate
            }
            _ => self.config.service_time_get,
        };
        let now = ctx.now();
        let start = self.cpu_busy_until.max(now);
        let done = start + service;
        self.cpu_busy_until = done;
        ctx.probe_span(sock, netsim::SpanEvent::ServerThink { start, end: done });
        let token = self.next_token;
        self.next_token += 1;
        self.pending.insert(token, (sock, req, stream, is_push));
        ctx.set_timer(token, done.since(now));
    }

    /// Build the response for one request.
    fn respond(&mut self, req: &Request, now: SimTime) -> Response {
        let version = req.version;
        let Some(entity) = self.store.get(&req.target) else {
            self.stats.responses_4xx += 1;
            let body = Bytes::from_static(b"<HTML><BODY><H1>404 Not Found</H1></BODY></HTML>\n");
            return Response::new(version, StatusCode::NOT_FOUND)
                .with_header("Date", self.http_date(now))
                .with_header("Server", self.config.kind.server_header())
                .with_header("Content-Type", "text/html")
                .with_header("Content-Length", body.len().to_string())
                .with_body(body);
        };

        // Cache validation.
        if evaluate_conditional(&req.headers, &entity.validators) == CondResult::NotModified {
            self.stats.responses_304 += 1;
            let mut resp = Response::new(version, StatusCode::NOT_MODIFIED)
                .with_header("Date", self.http_date(now))
                .with_header("Server", self.config.kind.server_header());
            if let Some(etag) = &entity.validators.etag {
                resp.headers.set("ETag", etag.to_header_value());
            }
            if self.config.kind == ServerKind::Jigsaw {
                // Jigsaw's 304s repeated the entity metadata.
                if let Some(lm) = entity.validators.last_modified {
                    resp.headers.set("Last-Modified", format_http_date(lm));
                }
                resp.headers
                    .set("Content-Type", entity.content_type.clone());
            }
            return resp;
        }

        // Choose the representation: deflated when negotiated for HTML.
        let mut content_encoding = None;
        let mut body = entity.body.clone();
        if self.config.serve_deflate
            && entity.content_type == "text/html"
            && coding::accepts(&req.headers, httpwire::ContentCoding::Deflate)
        {
            if let Some(d) = &entity.deflated {
                body = d.clone();
                content_encoding = Some("deflate");
            }
        }

        // Byte ranges (only single ranges; multipart/byteranges is beyond
        // what the experiments need).
        let mut status = StatusCode::OK;
        let mut content_range = None;
        if let Some(raw_range) = req.headers.get("Range") {
            if if_range_matches(&req.headers, &entity.validators) {
                if let Some(ranges) = range::parse_range_header(raw_range) {
                    if ranges.len() == 1 {
                        match ranges[0].resolve(body.len() as u64) {
                            Some((off, len)) => {
                                status = StatusCode::PARTIAL_CONTENT;
                                content_range =
                                    Some(range::content_range(off, len, body.len() as u64));
                                body = body.slice(off as usize..(off + len) as usize);
                            }
                            None => {
                                self.stats.responses_4xx += 1;
                                return Response::new(version, StatusCode::RANGE_NOT_SATISFIABLE)
                                    .with_header("Date", self.http_date(now))
                                    .with_header("Server", self.config.kind.server_header())
                                    .with_header("Content-Length", "0");
                            }
                        }
                    }
                }
            }
        }

        let mut resp = Response::new(version, status)
            .with_header("Date", self.http_date(now))
            .with_header("Server", self.config.kind.server_header());
        if self.config.kind == ServerKind::Jigsaw {
            resp.headers.set("MIME-Version", "1.0");
        }
        resp.headers
            .set("Content-Type", entity.content_type.clone());
        resp.headers.set("Content-Length", body.len().to_string());
        if let Some(enc) = content_encoding {
            resp.headers.set("Content-Encoding", enc);
            self.stats.deflate_responses += 1;
        }
        if let Some(cr) = content_range {
            resp.headers.set("Content-Range", cr);
        }
        entity.validators.write_headers(&mut resp.headers);

        match status {
            StatusCode::PARTIAL_CONTENT => self.stats.responses_206 += 1,
            _ => self.stats.responses_200 += 1,
        }

        if req.method == Method::Head {
            // Headers describe the entity; no body is transmitted.
            return resp;
        }
        self.stats.body_bytes_sent += body.len() as u64;
        resp.with_body(body)
    }

    /// Append a generated response to the connection's buffer, applying
    /// keep-alive and connection-limit policy.
    fn queue_response(&mut self, ctx: &mut Ctx<'_>, sock: SocketId, req: Request) {
        // Requests that were already parsed when the connection-limit
        // decision landed are dropped, exactly like a real server that
        // stops reading: the client must retry them elsewhere.
        if self
            .conns
            .get(&sock)
            .map_or(true, |c| c.closing || c.draining)
        {
            if let Some(conn) = self.conns.get_mut(&sock) {
                conn.in_service = conn.in_service.saturating_sub(1);
                self.flush(ctx, sock);
            }
            return;
        }
        let now = ctx.now();
        let mut resp = self.respond(&req, now);
        self.stats.requests += 1;

        let Some(conn) = self.conns.get_mut(&sock) else {
            return; // connection vanished (reset) while the request was in service
        };
        conn.in_service = conn.in_service.saturating_sub(1);
        conn.served += 1;

        let mut close_after = !req.wants_keep_alive();
        if let Some(limit) = self.config.max_requests_per_connection {
            if conn.served >= limit {
                close_after = true;
                self.stats.connections_closed_by_limit += 1;
            }
        }
        if close_after {
            if req.version == Version::Http11 {
                resp.headers.set("Connection", "close");
            }
            conn.closing = true;
        } else if req.version == Version::Http10 {
            // Honouring HTTP/1.0 Keep-Alive requires saying so.
            resp.headers.set("Connection", "Keep-Alive");
        }

        conn.outbuf.extend_from_slice(&resp.to_bytes());
        self.account(sock);
        self.flush(ctx, sock);
    }

    /// Flush policy: push buffered bytes when the buffer is full or the
    /// connection has no requests in flight (idle).
    fn flush(&mut self, ctx: &mut Ctx<'_>, sock: SocketId) {
        let Some(conn) = self.conns.get_mut(&sock) else {
            return;
        };
        if conn.mux.is_some() {
            // Framed connections have their own drain/close policy.
            self.mux_flush(ctx, sock);
            return;
        }
        let idle = conn.in_service == 0;
        if conn.outbuf.len() < self.config.output_buffer && !idle && !conn.closing {
            return;
        }
        while !conn.outbuf.is_empty() {
            let n = ctx.send(sock, &conn.outbuf);
            if n == 0 {
                break; // socket buffer full: resume on SendSpace
            }
            conn.outbuf.drain(..n);
        }
        self.account(sock);
        let conn = self.conns.get_mut(&sock).expect("still present");
        if conn.outbuf.is_empty() && conn.closing && conn.in_service == 0 {
            if self.config.naive_close {
                // The hazard: closing both halves at once resets any
                // pipelined requests already in flight.
                ctx.close(sock);
                self.remove_conn(sock);
                self.promote_parked(ctx);
            } else {
                // Correct behaviour: half-close and drain the read side.
                ctx.shutdown_write(sock);
                conn.draining = true;
            }
        } else if conn.outbuf.is_empty() && conn.peer_closed && conn.in_service == 0 {
            // Client finished and everything is answered: close our half.
            ctx.shutdown_write(sock);
        }
    }

    fn on_readable(&mut self, ctx: &mut Ctx<'_>, sock: SocketId) {
        if !self.conns.contains_key(&sock) {
            // Parked (or already-gone) connection: leave the bytes in the
            // socket's receive buffer so TCP window backpressure holds the
            // client until a service slot frees.
            return;
        }
        let data = ctx.recv(sock, usize::MAX);
        let conn = self.conns.get_mut(&sock).expect("checked above");
        if conn.mux.is_some() {
            self.mux_on_data(ctx, sock, &data);
            return;
        }
        if !conn.decided {
            // We cannot tell an HTTP request line from the mux preface
            // until enough bytes arrive: stash and compare.
            conn.pre.extend_from_slice(&data);
            if httpmux::preface_candidate(&conn.pre) {
                if conn.pre.len() < httpmux::PREFACE.len() {
                    self.account(sock);
                    return; // could still be either; wait for more bytes
                }
                conn.decided = true;
                let pre = std::mem::take(&mut conn.pre);
                self.mux_start(ctx, sock, &pre);
                return;
            }
            conn.decided = true;
            let pre = std::mem::take(&mut conn.pre);
            conn.parser.feed(&pre);
        } else {
            if conn.draining {
                return; // reading only to drain; requests beyond the limit are dropped
            }
            conn.parser.feed(&data);
        }
        self.account(sock);
        loop {
            match self.conns.get_mut(&sock).unwrap().parser.next() {
                Ok(Some(req)) => {
                    let conn = self.conns.get_mut(&sock).unwrap();
                    if conn.closing || conn.draining {
                        continue; // arrived after the limit: dropped
                    }
                    conn.in_service += 1;
                    self.schedule_request(ctx, sock, req, None, false);
                }
                Ok(None) => break,
                Err(_) => {
                    // Malformed request: 400 and close.
                    let conn = self.conns.get_mut(&sock).unwrap();
                    self.stats.responses_4xx += 1;
                    let resp = Response::new(Version::Http10, StatusCode::BAD_REQUEST)
                        .with_header("Content-Length", "0")
                        .with_header("Connection", "close");
                    conn.outbuf.extend_from_slice(&resp.to_bytes());
                    conn.closing = true;
                    self.flush(ctx, sock);
                    break;
                }
            }
        }
        self.account(sock);
    }
}

impl App for HttpServer {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: AppEvent) {
        match event {
            AppEvent::Start => match self.config.listen_backlog {
                Some(backlog) => ctx.listen_with_backlog(self.config.port, backlog),
                None => ctx.listen(self.config.port),
            },
            AppEvent::Accepted { socket, .. } => {
                let at_cap = self
                    .config
                    .max_connections
                    .is_some_and(|cap| self.conns.len() >= cap as usize);
                if at_cap {
                    match self.config.admission_policy {
                        AdmissionPolicy::Rst => {
                            self.stats.refused_connections += 1;
                            ctx.abort(socket);
                        }
                        AdmissionPolicy::Queue => {
                            self.stats.queued_connections += 1;
                            self.parked.push_back(socket);
                        }
                    }
                } else {
                    self.admit(ctx, socket);
                }
            }
            AppEvent::Readable(s) => self.on_readable(ctx, s),
            AppEvent::Timer(token) => {
                if let Some((sock, req, stream, is_push)) = self.pending.remove(&token) {
                    if self.conns.contains_key(&sock) {
                        match stream {
                            Some(stream) => {
                                self.queue_mux_response(ctx, sock, stream, req, is_push)
                            }
                            None => self.queue_response(ctx, sock, req),
                        }
                    }
                }
            }
            AppEvent::SendSpace(s) => self.flush(ctx, s),
            AppEvent::PeerFin(s) => {
                if let Some(conn) = self.conns.get_mut(&s) {
                    conn.peer_closed = true;
                    self.flush(ctx, s);
                }
            }
            AppEvent::Reset(s) | AppEvent::Closed(s) => {
                self.parked.retain(|&p| p != s);
                self.remove_conn(s);
                self.promote_parked(ctx);
            }
            _ => {}
        }
        if ctx.telemetry_enabled() {
            ctx.telemetry_gauge(Metric::ServerConnections, self.conns.len() as u64);
            ctx.telemetry_gauge(Metric::ServerQueuedConnections, self.parked.len() as u64);
            ctx.telemetry_gauge(Metric::ServerBufferedBytes, self.total_mem);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::Entity;
    use httpwire::ETag;

    fn store() -> Arc<SiteStore> {
        let mut s = SiteStore::new();
        s.insert(
            "/index.html",
            Entity::new(
                "<html>hello world hello world</html>"
                    .repeat(10)
                    .into_bytes(),
                "text/html",
                1000,
            )
            .with_deflate(),
        );
        s.insert("/a.gif", Entity::new(vec![0u8; 500], "image/gif", 1000));
        s.into_shared()
    }

    fn server() -> HttpServer {
        HttpServer::new(ServerConfig::apache(80), store())
    }

    #[test]
    fn respond_200_with_validators() {
        let mut srv = server();
        let req = Request::new(Method::Get, "/a.gif", Version::Http11);
        let resp = srv.respond(&req, SimTime::ZERO);
        assert_eq!(resp.status, StatusCode::OK);
        assert_eq!(resp.headers.get_int("Content-Length"), Some(500));
        assert!(resp.headers.contains("ETag"));
        assert!(resp.headers.contains("Last-Modified"));
        assert_eq!(resp.body.len(), 500);
    }

    #[test]
    fn respond_304_on_matching_etag() {
        let mut srv = server();
        let etag = srv
            .store
            .get("/a.gif")
            .unwrap()
            .validators
            .etag
            .clone()
            .unwrap();
        let req = Request::new(Method::Get, "/a.gif", Version::Http11)
            .with_header("If-None-Match", etag.to_header_value());
        let resp = srv.respond(&req, SimTime::ZERO);
        assert_eq!(resp.status, StatusCode::NOT_MODIFIED);
        assert!(resp.body.is_empty());
        assert_eq!(srv.stats.responses_304, 1);
    }

    #[test]
    fn respond_200_on_stale_etag() {
        let mut srv = server();
        let req = Request::new(Method::Get, "/a.gif", Version::Http11)
            .with_header("If-None-Match", ETag::strong("stale").to_header_value());
        let resp = srv.respond(&req, SimTime::ZERO);
        assert_eq!(resp.status, StatusCode::OK);
    }

    #[test]
    fn head_has_headers_but_no_body() {
        let mut srv = server();
        let req = Request::new(Method::Head, "/a.gif", Version::Http10);
        let resp = srv.respond(&req, SimTime::ZERO);
        assert_eq!(resp.status, StatusCode::OK);
        assert_eq!(resp.headers.get_int("Content-Length"), Some(500));
        assert!(resp.body.is_empty());
    }

    #[test]
    fn deflate_negotiated_for_html_only() {
        let mut srv = HttpServer::new(ServerConfig::apache(80).with_deflate(true), store());
        let req = Request::new(Method::Get, "/index.html", Version::Http11)
            .with_header("Accept-Encoding", "deflate");
        let resp = srv.respond(&req, SimTime::ZERO);
        assert_eq!(resp.headers.get("Content-Encoding"), Some("deflate"));
        let plain_len: usize = 37 * 10;
        assert!(resp.body.len() < plain_len);

        // GIFs are never deflated.
        let req = Request::new(Method::Get, "/a.gif", Version::Http11)
            .with_header("Accept-Encoding", "deflate");
        let resp = srv.respond(&req, SimTime::ZERO);
        assert!(!resp.headers.contains("Content-Encoding"));

        // And without Accept-Encoding the HTML stays plain.
        let req = Request::new(Method::Get, "/index.html", Version::Http11);
        let resp = srv.respond(&req, SimTime::ZERO);
        assert!(!resp.headers.contains("Content-Encoding"));
    }

    #[test]
    fn range_request_served() {
        let mut srv = server();
        let req =
            Request::new(Method::Get, "/a.gif", Version::Http11).with_header("Range", "bytes=0-99");
        let resp = srv.respond(&req, SimTime::ZERO);
        assert_eq!(resp.status, StatusCode::PARTIAL_CONTENT);
        assert_eq!(resp.body.len(), 100);
        assert_eq!(resp.headers.get("Content-Range"), Some("bytes 0-99/500"));
    }

    #[test]
    fn if_range_mismatch_serves_full_entity() {
        let mut srv = server();
        let req = Request::new(Method::Get, "/a.gif", Version::Http11)
            .with_header("Range", "bytes=0-99")
            .with_header("If-Range", "\"different\"");
        let resp = srv.respond(&req, SimTime::ZERO);
        assert_eq!(resp.status, StatusCode::OK);
        assert_eq!(resp.body.len(), 500);
    }

    #[test]
    fn unsatisfiable_range_rejected() {
        let mut srv = server();
        let req = Request::new(Method::Get, "/a.gif", Version::Http11)
            .with_header("Range", "bytes=900-999");
        let resp = srv.respond(&req, SimTime::ZERO);
        assert_eq!(resp.status, StatusCode::RANGE_NOT_SATISFIABLE);
    }

    #[test]
    fn missing_object_is_404() {
        let mut srv = server();
        let req = Request::new(Method::Get, "/nope.gif", Version::Http11);
        let resp = srv.respond(&req, SimTime::ZERO);
        assert_eq!(resp.status, StatusCode::NOT_FOUND);
        assert!(!resp.body.is_empty());
    }

    #[test]
    fn jigsaw_304_is_more_verbose_than_apache() {
        let st = store();
        let etag = st.get("/a.gif").unwrap().validators.etag.clone().unwrap();
        let req = Request::new(Method::Get, "/a.gif", Version::Http11)
            .with_header("If-None-Match", etag.to_header_value());
        let mut apache = HttpServer::new(ServerConfig::apache(80), st.clone());
        let mut jigsaw = HttpServer::new(ServerConfig::jigsaw(80), st);
        let a = apache.respond(&req, SimTime::ZERO).wire_len();
        let j = jigsaw.respond(&req, SimTime::ZERO).wire_len();
        assert!(j > a, "jigsaw 304 ({j}) should exceed apache ({a})");
    }
}
