//! # httpserver — the simulated origin server
//!
//! An event-driven HTTP/1.0+1.1 server running on a [`netsim`] host, with
//! behaviour profiles modelling the paper's two servers (W3C Jigsaw 1.06
//! and Apache 1.2b10): response output buffering, a single-CPU service
//! model, conditional requests and byte ranges, pre-deflated entities, a
//! per-connection request limit, and both the correct independent
//! half-close and the naive close that causes the paper's RST hazard.
//!
//! ```
//! use httpserver::{Entity, HttpServer, ServerConfig, SiteStore};
//!
//! let mut store = SiteStore::new();
//! store.insert("/index.html", Entity::new(&b"<html>hi</html>"[..], "text/html", 865_000_000));
//! let server = HttpServer::new(ServerConfig::apache(80), store.into_shared());
//! assert_eq!(server.config().port, 80);
//! // install with: sim.install_app(host, Box::new(server))
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod server;
pub mod store;

pub use config::{AdmissionPolicy, ServerConfig, ServerKind};
pub use server::{HttpServer, ServerStats};
pub use store::{Entity, SiteStore};
