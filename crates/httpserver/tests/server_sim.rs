//! Integration tests driving the server over the simulated network with
//! a raw-bytes test client (deliberately *not* the `httpclient` robot, so
//! the server is exercised against an independent implementation).

use bytes::Bytes;
use httpserver::{AdmissionPolicy, Entity, HttpServer, ServerConfig, SiteStore};
use httpwire::{Method, ResponseParser};
use netsim::sim::{App, AppEvent, Ctx};
use netsim::{LinkConfig, Simulator, SockAddr, SocketId};
use std::sync::Arc;

/// Sends a fixed preformatted byte blob, collects responses.
struct RawClient {
    server: SockAddr,
    to_send: Vec<u8>,
    expect: Vec<Method>,
    parser: ResponseParser,
    responses: Vec<httpwire::Response>,
    sock: Option<SocketId>,
    half_close_after_send: bool,
}

impl RawClient {
    fn new(server: SockAddr, to_send: Vec<u8>, expect: Vec<Method>) -> Self {
        RawClient {
            server,
            to_send,
            expect,
            parser: ResponseParser::new(),
            responses: Vec::new(),
            sock: None,
            half_close_after_send: true,
        }
    }
}

impl App for RawClient {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: AppEvent) {
        match ev {
            AppEvent::Start => {
                for m in &self.expect {
                    self.parser.expect(*m);
                }
                self.sock = Some(ctx.connect(self.server));
            }
            AppEvent::Connected(s) => {
                let data = std::mem::take(&mut self.to_send);
                ctx.send(s, &data);
                if self.half_close_after_send {
                    ctx.shutdown_write(s);
                }
            }
            AppEvent::Readable(s) => {
                let data = ctx.recv(s, usize::MAX);
                self.parser.feed(&data);
                while let Ok(Some(resp)) = self.parser.next() {
                    self.responses.push(resp);
                }
            }
            AppEvent::PeerFin(_) => {
                if let Ok(Some(resp)) = self.parser.finish() {
                    self.responses.push(resp);
                }
            }
            _ => {}
        }
    }
}

fn store() -> Arc<SiteStore> {
    let mut s = SiteStore::new();
    s.insert(
        "/index.html",
        Entity::new(
            "<html><body>test page body</body></html>"
                .repeat(20)
                .into_bytes(),
            "text/html",
            865_000_000,
        )
        .with_deflate(),
    );
    s.insert(
        "/big.gif",
        Entity::new(vec![7u8; 20_000], "image/gif", 865_000_000),
    );
    s.into_shared()
}

fn run_raw(
    server_cfg: ServerConfig,
    wire: Vec<u8>,
    expect: Vec<Method>,
) -> Vec<httpwire::Response> {
    let mut sim = Simulator::new();
    let c = sim.add_host("client");
    let s = sim.add_host("server");
    sim.add_link(c, s, LinkConfig::lan());
    sim.install_app(s, Box::new(HttpServer::new(server_cfg, store())));
    sim.install_app(
        c,
        Box::new(RawClient::new(SockAddr::new(s, 80), wire, expect)),
    );
    sim.run_until_idle();
    sim.app_mut::<RawClient>(c).unwrap().responses.clone()
}

#[test]
fn serves_pipelined_batch_in_order() {
    let wire = b"GET /index.html HTTP/1.1\r\nHost: x\r\n\r\n\
                 GET /big.gif HTTP/1.1\r\nHost: x\r\n\r\n\
                 GET /index.html HTTP/1.1\r\nHost: x\r\n\r\n"
        .to_vec();
    let resps = run_raw(
        ServerConfig::apache(80),
        wire,
        vec![Method::Get, Method::Get, Method::Get],
    );
    assert_eq!(resps.len(), 3);
    assert_eq!(resps[0].headers.get("Content-Type"), Some("text/html"));
    assert_eq!(resps[1].body.len(), 20_000);
    assert_eq!(resps[2].status.0, 200);
}

#[test]
fn http10_connection_closes_after_response() {
    let wire = b"GET /big.gif HTTP/1.0\r\n\r\n".to_vec();
    let resps = run_raw(ServerConfig::apache(80), wire, vec![Method::Get]);
    assert_eq!(resps.len(), 1);
    assert!(!resps[0].keeps_alive());
}

#[test]
fn http10_keep_alive_honoured() {
    let wire = b"GET /big.gif HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n".to_vec();
    let resps = run_raw(ServerConfig::apache(80), wire, vec![Method::Get]);
    assert_eq!(resps.len(), 1);
    assert!(resps[0].keeps_alive());
    assert_eq!(resps[0].headers.get("Connection"), Some("Keep-Alive"));
}

#[test]
fn bad_request_gets_400() {
    let wire = b"BOGUS REQUEST LINE\r\n\r\n".to_vec();
    let resps = run_raw(ServerConfig::apache(80), wire, vec![Method::Get]);
    assert_eq!(resps.len(), 1);
    assert_eq!(resps[0].status.0, 400);
}

#[test]
fn request_limit_marks_last_response_close() {
    let wire = b"GET /index.html HTTP/1.1\r\nHost: x\r\n\r\n\
                 GET /index.html HTTP/1.1\r\nHost: x\r\n\r\n\
                 GET /index.html HTTP/1.1\r\nHost: x\r\n\r\n"
        .to_vec();
    let resps = run_raw(
        ServerConfig::apache(80).with_max_requests(2),
        wire,
        vec![Method::Get, Method::Get, Method::Get],
    );
    // Only two answered; the second carries Connection: close.
    assert_eq!(resps.len(), 2);
    assert!(resps[0].keeps_alive());
    assert!(!resps[1].keeps_alive());
}

#[test]
fn deflate_served_when_negotiated() {
    let wire = b"GET /index.html HTTP/1.1\r\nHost: x\r\nAccept-Encoding: deflate\r\n\r\n".to_vec();
    let resps = run_raw(
        ServerConfig::apache(80).with_deflate(true),
        wire,
        vec![Method::Get],
    );
    assert_eq!(resps[0].headers.get("Content-Encoding"), Some("deflate"));
    let body = httpwire::coding::decode(httpwire::ContentCoding::Deflate, &resps[0].body)
        .expect("valid deflate body");
    assert!(String::from_utf8_lossy(&body).contains("test page body"));
}

#[test]
fn conditional_get_roundtrip_over_network() {
    // First fetch to learn the ETag, second conditional fetch gets 304.
    let wire = b"GET /big.gif HTTP/1.1\r\nHost: x\r\n\r\n".to_vec();
    let resps = run_raw(ServerConfig::apache(80), wire, vec![Method::Get]);
    let etag = resps[0]
        .headers
        .get("ETag")
        .expect("etag present")
        .to_string();

    let wire2 =
        format!("GET /big.gif HTTP/1.1\r\nHost: x\r\nIf-None-Match: {etag}\r\n\r\n").into_bytes();
    let resps2 = run_raw(ServerConfig::apache(80), wire2, vec![Method::Get]);
    assert_eq!(resps2[0].status.0, 304);
    assert!(resps2[0].body.is_empty());
}

#[test]
fn range_request_over_network() {
    let wire = b"GET /big.gif HTTP/1.1\r\nHost: x\r\nRange: bytes=100-199\r\n\r\n".to_vec();
    let resps = run_raw(ServerConfig::apache(80), wire, vec![Method::Get]);
    assert_eq!(resps[0].status.0, 206);
    assert_eq!(resps[0].body, Bytes::from(vec![7u8; 100]));
    assert_eq!(
        resps[0].headers.get("Content-Range"),
        Some("bytes 100-199/20000")
    );
}

#[test]
fn head_over_network_sends_no_body() {
    let wire = b"HEAD /big.gif HTTP/1.1\r\nHost: x\r\n\r\n".to_vec();
    let resps = run_raw(ServerConfig::apache(80), wire, vec![Method::Head]);
    assert_eq!(resps[0].status.0, 200);
    assert!(resps[0].body.is_empty());
    assert_eq!(resps[0].headers.get_int("Content-Length"), Some(20_000));
}

/// Minimal one-request HTTP/1.0 client for admission tests: records
/// whether it was served or reset.
struct AdmClient {
    server: SockAddr,
    parser: ResponseParser,
    responses: u32,
    reset: bool,
}

impl AdmClient {
    fn new(server: SockAddr) -> Self {
        AdmClient {
            server,
            parser: ResponseParser::new(),
            responses: 0,
            reset: false,
        }
    }
}

impl App for AdmClient {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: AppEvent) {
        match ev {
            AppEvent::Start => {
                self.parser.expect(Method::Get);
                ctx.connect(self.server);
            }
            AppEvent::Connected(s) => {
                ctx.send(s, b"GET /big.gif HTTP/1.0\r\n\r\n");
            }
            AppEvent::Readable(s) => {
                let data = ctx.recv(s, usize::MAX);
                self.parser.feed(&data);
                while let Ok(Some(_)) = self.parser.next() {
                    self.responses += 1;
                }
            }
            AppEvent::PeerFin(s) => {
                if let Ok(Some(_)) = self.parser.finish() {
                    self.responses += 1;
                }
                ctx.close(s);
            }
            AppEvent::Reset(_) => self.reset = true,
            _ => {}
        }
    }
}

/// Run `n` simultaneous one-shot clients against one server; returns
/// (per-client (responses, reset), server stats, server host id, sim).
fn run_fleet(n: usize, server_cfg: ServerConfig) -> (Vec<(u32, bool)>, httpserver::ServerStats) {
    let mut sim = Simulator::new();
    let clients: Vec<_> = (0..n)
        .map(|i| sim.add_host(&format!("client{i}")))
        .collect();
    let s = sim.add_host("server");
    for &c in &clients {
        sim.add_link(c, s, LinkConfig::lan());
    }
    sim.install_app(s, Box::new(HttpServer::new(server_cfg, store())));
    for &c in &clients {
        sim.install_app(c, Box::new(AdmClient::new(SockAddr::new(s, 80))));
    }
    sim.run_until_idle();
    let outcomes = clients
        .iter()
        .map(|&c| {
            let app = sim.app_mut::<AdmClient>(c).unwrap();
            (app.responses, app.reset)
        })
        .collect();
    let stats = sim.app_mut::<HttpServer>(s).unwrap().stats;
    (outcomes, stats)
}

#[test]
fn connection_cap_rst_policy_refuses_excess_clients() {
    let cfg = ServerConfig::apache(80).with_max_connections(2, AdmissionPolicy::Rst);
    let (outcomes, stats) = run_fleet(4, cfg);
    let served = outcomes.iter().filter(|(r, _)| *r == 1).count();
    let reset = outcomes.iter().filter(|(_, r)| *r).count();
    assert_eq!(served, 2, "cap admits exactly two: {outcomes:?}");
    assert_eq!(reset, 2, "the excess two are RST: {outcomes:?}");
    assert_eq!(stats.refused_connections, 2);
    assert_eq!(stats.connections, 2);
    assert_eq!(stats.peak_connections, 2);
}

#[test]
fn connection_cap_queue_policy_parks_and_eventually_serves_all() {
    let cfg = ServerConfig::apache(80).with_max_connections(1, AdmissionPolicy::Queue);
    let (outcomes, stats) = run_fleet(4, cfg);
    assert!(
        outcomes.iter().all(|&(r, reset)| r == 1 && !reset),
        "every parked client is eventually served: {outcomes:?}"
    );
    assert_eq!(stats.queued_connections, 3);
    assert_eq!(stats.connections, 4);
    assert_eq!(stats.peak_connections, 1, "never more than one in service");
}

#[test]
fn listen_backlog_plumbed_through_and_recovered_by_retransmission() {
    let cfg = ServerConfig::apache(80).with_listen_backlog(2);
    let mut sim = Simulator::new();
    let clients: Vec<_> = (0..6)
        .map(|i| sim.add_host(&format!("client{i}")))
        .collect();
    let s = sim.add_host("server");
    for &c in &clients {
        sim.add_link(c, s, LinkConfig::lan());
    }
    sim.install_app(s, Box::new(HttpServer::new(cfg, store())));
    for &c in &clients {
        sim.install_app(c, Box::new(AdmClient::new(SockAddr::new(s, 80))));
    }
    sim.run_until_idle();
    assert!(
        sim.socket_stats(s).syn_drops > 0,
        "six simultaneous SYNs must overflow a backlog of two"
    );
    for &c in &clients {
        assert_eq!(
            sim.app_mut::<AdmClient>(c).unwrap().responses,
            1,
            "SYN retransmission recovers every dropped client"
        );
    }
}

#[test]
fn memory_accounting_tracks_buffered_responses() {
    let mut sim = Simulator::new();
    let c = sim.add_host("client");
    let s = sim.add_host("server");
    sim.add_link(c, s, LinkConfig::lan());
    sim.install_app(
        s,
        Box::new(HttpServer::new(ServerConfig::apache(80), store())),
    );
    let mut wire = Vec::new();
    let mut expect = Vec::new();
    for _ in 0..10 {
        wire.extend_from_slice(b"GET /big.gif HTTP/1.1\r\nHost: x\r\n\r\n");
        expect.push(Method::Get);
    }
    sim.install_app(
        c,
        Box::new(RawClient::new(SockAddr::new(s, 80), wire, expect)),
    );
    sim.run_until_idle();
    let stats = sim.app_mut::<HttpServer>(s).unwrap().stats;
    // Ten 20 kB entities against a bounded socket buffer: at least one
    // full response must have sat in the output buffer at some point.
    assert!(
        stats.peak_conn_memory >= 20_000,
        "peak_conn_memory = {}",
        stats.peak_conn_memory
    );
    assert!(stats.peak_total_memory >= stats.peak_conn_memory);
    assert_eq!(stats.peak_connections, 1);
}

#[test]
fn big_response_buffer_backpressure() {
    // Ten large objects pipelined: the server must handle socket
    // backpressure (SendSpace) without losing or reordering data.
    let mut wire = Vec::new();
    let mut expect = Vec::new();
    for _ in 0..10 {
        wire.extend_from_slice(b"GET /big.gif HTTP/1.1\r\nHost: x\r\n\r\n");
        expect.push(Method::Get);
    }
    let resps = run_raw(ServerConfig::apache(80), wire, expect);
    assert_eq!(resps.len(), 10);
    for r in &resps {
        assert_eq!(r.body.len(), 20_000);
        assert!(r.body.iter().all(|&b| b == 7));
    }
}
