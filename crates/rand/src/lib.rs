//! Workspace-local stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! implements the part of the `rand` 0.8 API the workspace uses:
//! [`rngs::SmallRng`] (the xoshiro256++ generator rand 0.8 uses on
//! 64-bit platforms), [`SeedableRng::seed_from_u64`] (SplitMix64 seeding)
//! and the [`Rng`] sampling methods `gen`, `gen_range` and `gen_bool`.
//!
//! The algorithms — xoshiro256++, SplitMix64 seeding, Lemire's widening
//! multiply for integer ranges, the 1..2 mantissa trick for float ranges
//! and the 64-bit-scaled Bernoulli — follow rand 0.8.5 exactly, so a
//! given seed reproduces the byte streams the workspace's synthetic
//! content was built with.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The raw generator interface: a source of uniform random words.
pub trait RngCore {
    /// The next 32 uniform random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 uniform random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// The per-generator seed type.
    type Seed;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly over their whole domain (`Rng::gen`).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_via_u32 {
    ($($ty:ty),*) => {$(
        impl Standard for $ty {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u32() as $ty
            }
        }
    )*};
}
standard_via_u32!(u8, i8, u16, i16, u32, i32);

macro_rules! standard_via_u64 {
    ($($ty:ty),*) => {$(
        impl Standard for $ty {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}
standard_via_u64!(u64, i64, usize, isize);

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // rand 0.8: a sign test on the most significant bit of a u32.
        (rng.next_u32() as i32) < 0
    }
}

/// Types supporting uniform sampling from half-open and inclusive ranges.
pub trait SampleUniform: Sized {
    /// Sample uniformly from `[low, high)`.
    fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Sample uniformly from `[low, high]`.
    fn sample_single_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

/// 32x32→64 widening multiply, split into (high, low) words.
fn wmul32(a: u32, b: u32) -> (u32, u32) {
    let t = a as u64 * b as u64;
    ((t >> 32) as u32, t as u32)
}

/// 64x64→128 widening multiply, split into (high, low) words.
fn wmul64(a: u64, b: u64) -> (u64, u64) {
    let t = a as u128 * b as u128;
    ((t >> 64) as u64, t as u64)
}

macro_rules! uniform_int_impl {
    ($ty:ty, $unsigned:ty, $u_large:ty, $wmul:ident) => {
        impl SampleUniform for $ty {
            fn sample_single<R: RngCore + ?Sized>(low: $ty, high: $ty, rng: &mut R) -> $ty {
                assert!(low < high, "gen_range: low >= high");
                let range = high.wrapping_sub(low) as $unsigned as $u_large;
                // rand 0.8's single-sample fast path approximates the
                // rejection zone from the leading zeros; only the inclusive
                // path below uses the exact modulus.
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v = <$u_large as Standard>::sample(rng);
                    let (hi, lo) = $wmul(v, range);
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }

            fn sample_single_inclusive<R: RngCore + ?Sized>(
                low: $ty,
                high: $ty,
                rng: &mut R,
            ) -> $ty {
                assert!(low <= high, "gen_range: low > high");
                let range = high.wrapping_sub(low).wrapping_add(1) as $unsigned as $u_large;
                if range == 0 {
                    // The full domain: every word is acceptable.
                    return <$ty as Standard>::sample(rng);
                }
                // rand 0.8 has no single-sample fast path for inclusive
                // ranges: it builds a `Uniform` whose zone is exact
                // (`MAX - (MAX - range + 1) % range`), unlike the half-open
                // path's leading-zeros approximation above.
                let zone = <$u_large>::MAX - (<$u_large>::MAX - range + 1) % range;
                loop {
                    let v = <$u_large as Standard>::sample(rng);
                    let (hi, lo) = $wmul(v, range);
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }
        }
    };
}

uniform_int_impl!(u8, u8, u32, wmul32);
uniform_int_impl!(i8, u8, u32, wmul32);
uniform_int_impl!(u16, u16, u32, wmul32);
uniform_int_impl!(i16, u16, u32, wmul32);
uniform_int_impl!(u32, u32, u32, wmul32);
uniform_int_impl!(i32, u32, u32, wmul32);
uniform_int_impl!(u64, u64, u64, wmul64);
uniform_int_impl!(i64, u64, u64, wmul64);
uniform_int_impl!(usize, usize, u64, wmul64);
uniform_int_impl!(isize, usize, u64, wmul64);

macro_rules! uniform_float_impl {
    ($ty:ty, $uty:ty, $bits_to_discard:expr, $exponent_bias:expr, $fraction_bits:expr) => {
        impl SampleUniform for $ty {
            fn sample_single<R: RngCore + ?Sized>(low: $ty, high: $ty, rng: &mut R) -> $ty {
                assert!(low < high, "gen_range: low >= high");
                let mut scale = high - low;
                loop {
                    // A uniform value in [1, 2): fill the mantissa, pin the
                    // exponent to 0.
                    let mantissa = <$uty as Standard>::sample(rng) >> $bits_to_discard;
                    let value1_2 =
                        <$ty>::from_bits(mantissa | (($exponent_bias as $uty) << $fraction_bits));
                    // rand 0.8 maps to [0, 1) before scaling so the product
                    // cannot overflow, then rejects the (rounding-induced)
                    // case where the result lands exactly on `high`.
                    let value0_1 = value1_2 - 1.0;
                    let res = value0_1 * scale + low;
                    if res < high {
                        return res;
                    }
                    // Shave one ulp off the scale and retry, as rand's
                    // `decrease_masked` does for a positive finite scale.
                    scale = <$ty>::from_bits(scale.to_bits() - 1);
                }
            }

            fn sample_single_inclusive<R: RngCore + ?Sized>(
                low: $ty,
                high: $ty,
                rng: &mut R,
            ) -> $ty {
                // rand treats inclusive float ranges like half-open ones.
                Self::sample_single(low, high, rng)
            }
        }
    };
}

uniform_float_impl!(f64, u64, 12, 1023u64, 52);
uniform_float_impl!(f32, u32, 9, 127u32, 23);

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_single(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_single_inclusive(*self.start(), *self.end(), rng)
    }
}

/// High-level sampling methods, available on every generator.
pub trait Rng: RngCore {
    /// A uniform value over the whole domain of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform value from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        if p == 1.0 {
            return true;
        }
        // p scaled to the full 64-bit domain, as rand's Bernoulli does.
        let p_int = (p * (2.0 * (1u64 << 63) as f64)) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The bundled generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The small, fast generator: xoshiro256++, exactly as `rand` 0.8
    /// uses for `SmallRng` on 64-bit platforms.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        #[inline]
        fn step(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            // The lowest bits have linear dependencies; use the upper.
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.step()
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> SmallRng {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            assert!(s.iter().any(|&w| w != 0), "xoshiro seed must be non-zero");
            SmallRng { s }
        }

        fn seed_from_u64(mut state: u64) -> SmallRng {
            // SplitMix64 expansion, as rand's xoshiro seeding does.
            let mut seed = [0u8; 32];
            for chunk in seed.chunks_exact_mut(8) {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                chunk.copy_from_slice(&z.to_le_bytes());
            }
            SmallRng::from_seed(seed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    /// Reference vector from the xoshiro256++ reference implementation
    /// (and rand 0.8.5's own test), seed s = [1, 2, 3, 4].
    #[test]
    fn xoshiro256plusplus_reference() {
        let mut seed = [0u8; 32];
        seed[0] = 1;
        seed[8] = 2;
        seed[16] = 3;
        seed[24] = 4;
        let mut rng = SmallRng::from_seed(seed);
        let expected: [u64; 10] = [
            41_943_041,
            58_720_359,
            3_588_806_011_781_223,
            3_591_011_842_654_386,
            9_228_616_714_210_784_205,
            9_973_669_472_204_895_162,
            14_011_001_112_246_962_877,
            12_406_186_145_184_390_807,
            15_849_039_046_786_891_736,
            10_450_023_813_501_588_000,
        ];
        for &e in &expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn seed_from_u64_is_deterministic_and_spread() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xa: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let xb: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        let xc: Vec<u64> = (0..4).map(|_| c.next_u64()).collect();
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn gen_range_int_in_bounds_and_covers() {
        let mut rng = SmallRng::seed_from_u64(42);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            let v = rng.gen_range(3..9usize);
            assert!((3..9).contains(&v));
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 3..9 drawn");
        for _ in 0..1000 {
            let v = rng.gen_range(1..=5u32);
            assert!((1..=5).contains(&v));
        }
    }

    #[test]
    fn gen_range_float_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(0.3..2.5f64);
            assert!((0.3..2.5).contains(&v), "{v}");
            let w = rng.gen_range(-0.5..0.5f64);
            assert!((-0.5..0.5).contains(&w), "{w}");
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = SmallRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.8)).count();
        assert!((7_700..8_300).contains(&hits), "{hits}");
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
    }

    #[test]
    fn gen_u64_is_raw_stream() {
        let mut a = SmallRng::seed_from_u64(3);
        let mut b = SmallRng::seed_from_u64(3);
        assert_eq!(a.gen::<u64>(), b.next_u64());
    }
}
