//! End-to-end tests: the robot client against the HTTP server over the
//! simulated network, reproducing the qualitative results of the paper's
//! protocol matrix.

use httpclient::{
    ClientCache, ClientConfig, HttpClient, ProtocolMode, RevalidationStyle, Workload,
};
use httpserver::{Entity, HttpServer, ServerConfig, SiteStore};
use netsim::{HostId, LinkConfig, SimDuration, Simulator, SockAddr, TraceStats};
use std::sync::Arc;

/// Build a small three-object site (HTML + two images).
fn small_store() -> Arc<SiteStore> {
    let html = format!(
        "<html><body>{}<img src=\"/images/a.gif\"><img src=\"/images/b.gif\"></body></html>",
        "filler text ".repeat(200)
    );
    let mut s = SiteStore::new();
    s.insert(
        "/index.html",
        Entity::new(html.into_bytes(), "text/html", 1000).with_deflate(),
    );
    s.insert(
        "/images/a.gif",
        Entity::new(vec![1u8; 3000], "image/gif", 1000),
    );
    s.insert(
        "/images/b.gif",
        Entity::new(vec![2u8; 500], "image/gif", 1000),
    );
    s.into_shared()
}

struct Run {
    sim: Simulator,
    client_host: HostId,
    server_host: HostId,
}

impl Run {
    fn stats(&self) -> TraceStats {
        self.sim.stats(self.client_host, self.server_host)
    }

    fn client(&mut self) -> &mut HttpClient {
        let h = self.client_host;
        self.sim.app_mut::<HttpClient>(h).unwrap()
    }
}

fn run(
    link: LinkConfig,
    server_cfg: ServerConfig,
    store: Arc<SiteStore>,
    make_client: impl FnOnce(SockAddr) -> HttpClient,
) -> Run {
    let mut sim = Simulator::new();
    let client_host = sim.add_host("client");
    let server_host = sim.add_host("server");
    sim.add_link(client_host, server_host, link);
    let addr = SockAddr::new(server_host, server_cfg.port);
    sim.install_app(server_host, Box::new(HttpServer::new(server_cfg, store)));
    sim.install_app(client_host, Box::new(make_client(addr)));
    sim.run_until_idle();
    Run {
        sim,
        client_host,
        server_host,
    }
}

fn browse(mode: ProtocolMode) -> Run {
    run(
        LinkConfig::lan(),
        ServerConfig::apache(80),
        small_store(),
        |addr| {
            HttpClient::new(
                ClientConfig::robot(mode, addr),
                Workload::Browse {
                    start: "/index.html".into(),
                },
            )
        },
    )
}

#[test]
fn browse_completes_in_all_modes() {
    for mode in [
        ProtocolMode::Http10Parallel { max_connections: 4 },
        ProtocolMode::Http11Persistent,
        ProtocolMode::Http11Pipelined,
    ] {
        let mut r = browse(mode);
        let stats = r.client().stats.clone();
        assert!(stats.done, "{mode:?} did not finish");
        assert_eq!(stats.fetched.len(), 3, "{mode:?}: html + 2 images");
        assert!(stats.fetched.iter().all(|f| f.status == 200));
        let total: usize = stats.fetched.iter().map(|f| f.body_len).sum();
        assert!(total > 3500, "{mode:?}: bodies transferred");
    }
}

#[test]
fn http10_opens_one_connection_per_request() {
    let mut r = browse(ProtocolMode::Http10Parallel { max_connections: 4 });
    assert_eq!(r.client().stats.connections_opened, 3);
    let s = r.stats();
    assert_eq!(s.syns, 6, "3 connections x (SYN + SYN-ACK)");
}

#[test]
fn http11_modes_use_one_connection() {
    for mode in [
        ProtocolMode::Http11Persistent,
        ProtocolMode::Http11Pipelined,
    ] {
        let mut r = browse(mode);
        assert_eq!(r.client().stats.connections_opened, 1, "{mode:?}");
        let s = r.stats();
        assert_eq!(s.syns, 2, "{mode:?}");
    }
}

/// A wider site: HTML plus `n` small images (like the Microscape page in
/// miniature), where protocol differences show clearly.
fn wide_store(n: usize) -> Arc<SiteStore> {
    let mut html = String::from("<html><body>");
    for i in 0..n {
        html.push_str(&format!("<img src=\"/img/{i}.gif\"> item {i} "));
    }
    html.push_str("</body></html>");
    let mut s = SiteStore::new();
    s.insert(
        "/index.html",
        Entity::new(html.into_bytes(), "text/html", 1000).with_deflate(),
    );
    for i in 0..n {
        s.insert(
            &format!("/img/{i}.gif"),
            Entity::new(vec![i as u8; 400 + i * 37], "image/gif", 1000),
        );
    }
    s.into_shared()
}

#[test]
fn pipelining_reduces_packets() {
    let fetch = |mode| {
        run(
            LinkConfig::lan(),
            ServerConfig::apache(80),
            wide_store(16),
            |addr| {
                HttpClient::new(
                    ClientConfig::robot(mode, addr),
                    Workload::Browse {
                        start: "/index.html".into(),
                    },
                )
            },
        )
        .stats()
        .total_packets()
    };
    let p10 = fetch(ProtocolMode::Http10Parallel { max_connections: 4 });
    let pers = fetch(ProtocolMode::Http11Persistent);
    let pipe = fetch(ProtocolMode::Http11Pipelined);
    assert!(
        pipe < pers && pers < p10,
        "packets should order pipelined ({pipe}) < persistent ({pers}) < 1.0 ({p10})"
    );
    assert!(
        pipe * 2 <= p10,
        "paper: pipelining saves at least 2x packets ({pipe} vs {p10})"
    );
}

#[test]
fn deflate_reduces_html_bytes_on_the_wire() {
    let store = small_store();
    let plain = run(
        LinkConfig::lan(),
        ServerConfig::apache(80).with_deflate(true),
        store.clone(),
        |addr| {
            HttpClient::new(
                ClientConfig::robot(ProtocolMode::Http11Pipelined, addr),
                Workload::Browse {
                    start: "/index.html".into(),
                },
            )
        },
    );
    let mut compressed = run(
        LinkConfig::lan(),
        ServerConfig::apache(80).with_deflate(true),
        store,
        |addr| {
            HttpClient::new(
                ClientConfig::robot(ProtocolMode::Http11Pipelined, addr).with_deflate(true),
                Workload::Browse {
                    start: "/index.html".into(),
                },
            )
        },
    );
    let stats = compressed.client().stats.clone();
    let html = stats
        .fetched
        .iter()
        .find(|f| f.path == "/index.html")
        .unwrap();
    assert!(html.deflated, "HTML was served deflated");
    assert!(html.wire_body_len < html.body_len / 2);
    // Images stay identity-coded.
    assert!(stats
        .fetched
        .iter()
        .filter(|f| f.path != "/index.html")
        .all(|f| !f.deflated));
    assert!(compressed.stats().bytes < plain.stats().bytes);
}

#[test]
fn revalidation_with_etags_yields_304s() {
    let store = small_store();
    // Prime the cache exactly as a prior visit would.
    let mut cache = ClientCache::new();
    let html_entity = store.get("/index.html").unwrap();
    cache.prime(
        "/index.html",
        &html_entity.body,
        "text/html",
        1000,
        vec!["/images/a.gif".into(), "/images/b.gif".into()],
    );
    for p in ["/images/a.gif", "/images/b.gif"] {
        let e = store.get(p).unwrap();
        cache.prime(p, &e.body, "image/gif", 1000, vec![]);
    }

    let mut r = run(
        LinkConfig::lan(),
        ServerConfig::apache(80),
        store,
        move |addr| {
            HttpClient::with_cache(
                ClientConfig::robot(ProtocolMode::Http11Pipelined, addr),
                Workload::Revalidate {
                    start: "/index.html".into(),
                    style: RevalidationStyle::ConditionalGetEtag,
                },
                cache,
            )
        },
    );
    let stats = r.client().stats.clone();
    assert!(stats.done);
    assert_eq!(stats.fetched.len(), 3);
    assert_eq!(stats.validated(), 3, "everything revalidates to 304");
    assert_eq!(stats.body_bytes(), 0, "no entity bytes transferred");
}

#[test]
fn head_revalidation_transfers_html_but_not_images() {
    let store = small_store();
    let mut cache = ClientCache::new();
    let html_entity = store.get("/index.html").unwrap();
    cache.prime(
        "/index.html",
        &html_entity.body,
        "text/html",
        1000,
        vec!["/images/a.gif".into(), "/images/b.gif".into()],
    );

    let mut r = run(
        LinkConfig::lan(),
        ServerConfig::apache(80),
        store,
        move |addr| {
            HttpClient::with_cache(
                ClientConfig::robot(ProtocolMode::Http10Parallel { max_connections: 4 }, addr),
                Workload::Revalidate {
                    start: "/index.html".into(),
                    style: RevalidationStyle::HeadRequests,
                },
                cache,
            )
        },
    );
    let stats = r.client().stats.clone();
    assert!(stats.done);
    assert_eq!(stats.fetched.len(), 3);
    let html = stats
        .fetched
        .iter()
        .find(|f| f.path == "/index.html")
        .unwrap();
    assert_eq!(html.status, 200);
    assert!(html.body_len > 0, "1.0 profile re-fetches the HTML");
    for img in stats.fetched.iter().filter(|f| f.path != "/index.html") {
        assert_eq!(img.status, 200);
        assert_eq!(img.body_len, 0, "HEAD transfers no body");
    }
}

#[test]
fn server_request_limit_with_graceful_close_recovers() {
    // Server allows 2 requests per connection; the pipelined client must
    // reconnect and resend to finish all 3 fetches.
    let mut r = run(
        LinkConfig::lan(),
        ServerConfig::apache(80).with_max_requests(2),
        small_store(),
        |addr| {
            HttpClient::new(
                ClientConfig::robot(ProtocolMode::Http11Pipelined, addr),
                Workload::Browse {
                    start: "/index.html".into(),
                },
            )
        },
    );
    let stats = r.client().stats.clone();
    assert!(stats.done, "client recovered from the connection limit");
    assert_eq!(stats.fetched.len(), 3);
    assert!(stats.connections_opened >= 2);
}

#[test]
fn naive_close_resets_pipeline_but_client_recovers() {
    // The paper's scenario: a batch of pipelined requests, a server that
    // closes both halves after N responses. The still-in-flight requests
    // hit the closed socket and draw a RST that destroys buffered
    // responses; the client must recover. A slow uplink (PPP) keeps the
    // later requests in flight past the close, as in real deployments.
    let paths: Vec<String> = (0..30).map(|i| format!("/img/{i}.gif")).collect();
    let mut r = run(
        LinkConfig::ppp(),
        ServerConfig::apache(80)
            .with_max_requests(3)
            .with_naive_close(true),
        wide_store(30),
        |addr| {
            HttpClient::new(
                ClientConfig::robot(ProtocolMode::Http11Pipelined, addr),
                Workload::FetchList { paths },
            )
        },
    );
    let reset_count = r.stats().rsts;
    let stats = r.client().stats.clone();
    assert!(stats.done, "client recovered from RST");
    assert_eq!(stats.fetched.len(), 30);
    assert!(
        stats.fetched.iter().all(|f| f.status == 200),
        "every object eventually fetched"
    );
    assert!(
        reset_count > 0 && stats.resets > 0,
        "naive close should reset the pipelined connection (rsts={reset_count}, client resets={})",
        stats.resets
    );
    assert!(stats.retries > 0, "lost requests were retried");
    assert!(stats.connections_opened >= 2);
}

#[test]
fn reset_backoff_delays_reconnection_but_still_completes() {
    // Same RST scenario, once with the default immediate retry and once
    // with a backoff comfortably longer than the reconnect round trip:
    // the backoff run must finish later (the client genuinely pauses)
    // yet still fetch everything.
    let paths: Vec<String> = (0..30).map(|i| format!("/img/{i}.gif")).collect();
    let elapsed_with = |backoff: SimDuration| {
        let paths = paths.clone();
        let mut r = run(
            LinkConfig::ppp(),
            ServerConfig::apache(80)
                .with_max_requests(3)
                .with_naive_close(true),
            wide_store(30),
            |addr| {
                HttpClient::new(
                    ClientConfig::robot(ProtocolMode::Http11Pipelined, addr)
                        .with_reset_backoff(backoff),
                    Workload::FetchList { paths },
                )
            },
        );
        let stats = r.client().stats.clone();
        assert!(stats.done, "backoff {backoff:?}: client finished");
        assert_eq!(stats.fetched.len(), 30, "backoff {backoff:?}");
        assert!(stats.resets > 0, "backoff {backoff:?}: scenario must RST");
        r.stats().elapsed_secs()
    };
    let immediate = elapsed_with(SimDuration::ZERO);
    let backed_off = elapsed_with(SimDuration::from_secs(2));
    assert!(
        backed_off > immediate,
        "a reset backoff must lengthen the run ({backed_off} vs {immediate})"
    );
}

#[test]
fn persistent_serializes_requests() {
    // With serialization, elapsed time on a high-latency link must be
    // at least requests x RTT; pipelining collapses that.
    let store = small_store();
    let pers = run(
        LinkConfig::wan(),
        ServerConfig::apache(80),
        store.clone(),
        |addr| {
            HttpClient::new(
                ClientConfig::robot(ProtocolMode::Http11Persistent, addr),
                Workload::Browse {
                    start: "/index.html".into(),
                },
            )
        },
    );
    let pipe = run(LinkConfig::wan(), ServerConfig::apache(80), store, |addr| {
        HttpClient::new(
            ClientConfig::robot(ProtocolMode::Http11Pipelined, addr),
            Workload::Browse {
                start: "/index.html".into(),
            },
        )
    });
    let t_pers = pers.stats().elapsed_secs();
    let t_pipe = pipe.stats().elapsed_secs();
    assert!(
        t_pipe < t_pers,
        "pipelined ({t_pipe:.3}s) must beat persistent ({t_pers:.3}s) on the WAN"
    );
}

#[test]
fn flush_timer_saves_unflushed_requests() {
    // Without app flush and with a tiny workload, requests sit in the
    // 1024-byte buffer until the timer fires; the run must still finish.
    let mut r = run(
        LinkConfig::lan(),
        ServerConfig::apache(80),
        small_store(),
        |addr| {
            HttpClient::new(
                ClientConfig::robot(ProtocolMode::Http11Pipelined, addr)
                    .with_app_flush(false)
                    .with_flush_timeout(SimDuration::from_millis(1000)),
                Workload::Browse {
                    start: "/index.html".into(),
                },
            )
        },
    );
    let stats = r.client().stats.clone();
    assert!(stats.done);
    assert_eq!(stats.fetched.len(), 3);
}

#[test]
fn fetch_list_workload() {
    let mut r = run(
        LinkConfig::lan(),
        ServerConfig::apache(80),
        small_store(),
        |addr| {
            HttpClient::new(
                ClientConfig::robot(ProtocolMode::Http11Pipelined, addr),
                Workload::FetchList {
                    paths: vec!["/images/a.gif".into(), "/images/b.gif".into()],
                },
            )
        },
    );
    let stats = r.client().stats.clone();
    assert!(stats.done);
    assert_eq!(stats.fetched.len(), 2);
}

#[test]
fn mux_browse_completes_with_one_connection() {
    for push in [false, true] {
        let mut r = browse(ProtocolMode::Multiplexed { push });
        let stats = r.client().stats.clone();
        assert!(stats.done, "push={push}: did not finish");
        assert_eq!(stats.fetched.len(), 3, "push={push}: html + 2 images");
        assert!(stats.fetched.iter().all(|f| f.status == 200));
        assert_eq!(stats.connections_opened, 1, "push={push}");
        let s = r.stats();
        assert_eq!(s.syns, 2, "push={push}: one handshake");
    }
}

#[test]
fn mux_push_eliminates_image_requests() {
    let mut r = run(
        LinkConfig::lan(),
        ServerConfig::apache(80).with_mux_push(true),
        small_store(),
        |addr| {
            HttpClient::new(
                ClientConfig::robot(ProtocolMode::Multiplexed { push: true }, addr),
                Workload::Browse {
                    start: "/index.html".into(),
                },
            )
        },
    );
    let stats = r.client().stats.clone();
    assert!(stats.done);
    assert_eq!(stats.fetched.len(), 3, "html + 2 pushed images");
    assert!(stats.fetched.iter().all(|f| f.status == 200));
    assert_eq!(stats.pushed_responses, 2, "both images arrived as pushes");
    assert_eq!(stats.pushed_bytes, 3500, "entity bytes of the two gifs");
    assert_eq!(
        stats.requests_sent, 1,
        "only the HTML was explicitly requested"
    );
    assert_eq!(stats.cancelled_pushes, 0);
}

#[test]
fn mux_push_respects_client_refusal() {
    // Client does not advertise ENABLE_PUSH: a push-configured server
    // must not push, and the client fetches the images itself.
    let mut r = run(
        LinkConfig::lan(),
        ServerConfig::apache(80).with_mux_push(true),
        small_store(),
        |addr| {
            HttpClient::new(
                ClientConfig::robot(ProtocolMode::Multiplexed { push: false }, addr),
                Workload::Browse {
                    start: "/index.html".into(),
                },
            )
        },
    );
    let stats = r.client().stats.clone();
    assert!(stats.done);
    assert_eq!(stats.fetched.len(), 3);
    assert_eq!(stats.pushed_responses, 0, "nothing pushed");
    assert_eq!(stats.requests_sent, 3, "client fetched everything itself");
}

#[test]
fn mux_concurrency_beats_persistent_on_wan() {
    let elapsed = |mode| {
        run(
            LinkConfig::wan(),
            ServerConfig::apache(80),
            wide_store(16),
            |addr| {
                HttpClient::new(
                    ClientConfig::robot(mode, addr),
                    Workload::Browse {
                        start: "/index.html".into(),
                    },
                )
            },
        )
        .stats()
        .elapsed_secs()
    };
    let pers = elapsed(ProtocolMode::Http11Persistent);
    let mux = elapsed(ProtocolMode::Multiplexed { push: false });
    assert!(
        mux < pers,
        "concurrent streams ({mux:.3}s) must beat serialized persistent ({pers:.3}s)"
    );
}

#[test]
fn missing_object_reported_as_404() {
    let mut r = run(
        LinkConfig::lan(),
        ServerConfig::apache(80),
        small_store(),
        |addr| {
            HttpClient::new(
                ClientConfig::robot(ProtocolMode::Http11Pipelined, addr),
                Workload::FetchList {
                    paths: vec!["/missing.gif".into()],
                },
            )
        },
    );
    let stats = r.client().stats.clone();
    assert!(stats.done);
    assert_eq!(stats.fetched[0].status, 404);
}
