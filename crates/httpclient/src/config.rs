//! Client configuration: protocol modes, product header profiles, and
//! workloads.

use httpwire::{Method, Request, Version};
use netsim::{SimDuration, SockAddr};

/// How the client uses TCP connections — the paper's central variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolMode {
    /// HTTP/1.0: one request per connection, up to `max_connections`
    /// simultaneously (Navigator's default and hard-wired maximum is 4).
    Http10Parallel {
        /// Maximum simultaneous connections.
        max_connections: usize,
    },
    /// HTTP/1.1 with persistent connections but strictly serialized
    /// requests on a single connection.
    Http11Persistent,
    /// HTTP/1.1 with buffered pipelining on a single connection.
    Http11Pipelined,
    /// Binary-framed stream multiplexing over one connection
    /// (`crates/httpmux`): every request is a concurrent stream. With
    /// `push` the client advertises ENABLE_PUSH and accepts pushed
    /// subresources into the cache instead of requesting them.
    Multiplexed {
        /// Accept server push.
        push: bool,
    },
}

impl ProtocolMode {
    /// The HTTP version requests carry.
    pub fn version(self) -> Version {
        match self {
            ProtocolMode::Http10Parallel { .. } => Version::Http10,
            _ => Version::Http11,
        }
    }

    /// Whether this mode pipelines requests.
    pub fn is_pipelined(self) -> bool {
        matches!(self, ProtocolMode::Http11Pipelined)
    }

    /// Whether this mode multiplexes streams over one framed connection.
    pub fn is_multiplexed(self) -> bool {
        matches!(self, ProtocolMode::Multiplexed { .. })
    }

    /// Whether the client accepts server push.
    pub fn push_enabled(self) -> bool {
        matches!(self, ProtocolMode::Multiplexed { push: true })
    }
}

/// Which product's request headers to emit — this drives the bytes-per-
/// request differences in Tables 10 and 11.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestStyle {
    /// The libwww robot: carefully minimal, ~190 bytes per request.
    Robot,
    /// Netscape Navigator 4.0b5: verbose Accept lists.
    Navigator,
    /// Microsoft Internet Explorer 4.0b1: the most verbose of the three.
    Explorer,
}

impl RequestStyle {
    /// Construct a request for `path` in this product's style.
    pub fn request(self, method: Method, path: &str, version: Version, host: &str) -> Request {
        let mut req = Request::new(method, path, version);
        match self {
            RequestStyle::Robot => {
                req.headers.append("Host", host);
                req.headers.append("User-Agent", "libwww-robot/5.1");
                req.headers
                    .append("Accept", "image/gif, image/jpeg, text/html, */*");
            }
            RequestStyle::Navigator => {
                req.headers.append("Host", host);
                req.headers
                    .append("User-Agent", "Mozilla/4.04 [en] (WinNT; I)");
                req.headers.append(
                    "Accept",
                    "image/gif, image/x-xbitmap, image/jpeg, image/pjpeg, */*",
                );
                req.headers.append("Accept-Language", "en");
                req.headers.append("Accept-Charset", "iso-8859-1,*,utf-8");
                if version == Version::Http10 {
                    req.headers.append("Connection", "Keep-Alive");
                }
            }
            RequestStyle::Explorer => {
                req.headers.append("Accept", "image/gif, image/x-xbitmap, image/jpeg, image/pjpeg, application/vnd.ms-excel, application/msword, application/vnd.ms-powerpoint, */*");
                req.headers.append("Accept-Language", "en-us");
                req.headers.append(
                    "User-Agent",
                    "Mozilla/4.0 (compatible; MSIE 4.0b1; Windows NT)",
                );
                req.headers.append("Host", host);
                if version == Version::Http10 {
                    req.headers.append("Connection", "Keep-Alive");
                }
            }
        }
        req
    }
}

/// How a cached entity is revalidated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RevalidationStyle {
    /// HTTP/1.1 conditional GET with `If-None-Match` (entity tags).
    ConditionalGetEtag,
    /// Conditional GET with `If-Modified-Since` (all HTTP/1.0 can do).
    ConditionalGetDate,
    /// MSIE 4.0b1's observed behaviour: an *unconditional* GET for the
    /// page itself plus `If-Modified-Since` GETs for the images — the
    /// page body is always re-transferred.
    ConditionalGetDateFullHtml,
    /// The old libwww 4.1D profile: a plain GET for the HTML plus `HEAD`
    /// for every image.
    HeadRequests,
}

/// What the client is asked to do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Workload {
    /// First-time visit: fetch `start`, parse it, fetch every embedded
    /// image (requests issued as the HTML arrives when pipelining).
    Browse {
        /// The page to fetch first.
        start: String,
    },
    /// Revisit: every object (the page and its embedded images, from the
    /// primed cache) is revalidated.
    Revalidate {
        /// The page whose cache entry seeds the object list.
        start: String,
        /// How the cached copies are revalidated.
        style: RevalidationStyle,
    },
    /// Fetch an explicit list of paths unconditionally.
    FetchList {
        /// Paths to fetch, in order.
        paths: Vec<String>,
    },
}

/// Full client configuration.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Connection strategy.
    pub mode: ProtocolMode,
    /// The style.
    pub style: RequestStyle,
    /// Where the origin server lives.
    pub server: SockAddr,
    /// `Host` header value.
    pub host: String,
    /// Set TCP_NODELAY (the paper's recommendation for buffered
    /// pipelining).
    pub nodelay: bool,
    /// Advertise `Accept-Encoding: deflate`.
    pub accept_deflate: bool,
    /// Pipeline output buffer threshold ("we experimented ... and found
    /// that 1024 bytes is a good compromise").
    pub pipeline_buffer: usize,
    /// Flush timer backstop (1 s in the paper's initial tests, 50 ms in
    /// all later ones).
    pub flush_timeout: SimDuration,
    /// Whether the application forces a flush after the first (HTML)
    /// request and after the last known request — the paper's key tuning.
    pub app_flush: bool,
    /// CPU time to construct one request (reading the persistent cache to
    /// build validators). The paper's initial *disk* cache made this
    /// painfully large; the final runs used a memory file system.
    pub request_gen_time: SimDuration,
    /// CPU time to handle one response (parsing, cache writes).
    pub response_proc_time: SimDuration,
    /// Pause before reconnecting after a connection reset. Zero (the
    /// default, matching libwww) retries immediately; fleet experiments
    /// set it non-zero so refused clients do not hammer a loaded server.
    pub reset_backoff: SimDuration,
}

impl ClientConfig {
    /// The tuned robot the paper's final measurements use.
    pub fn robot(mode: ProtocolMode, server: SockAddr) -> ClientConfig {
        ClientConfig {
            mode,
            style: RequestStyle::Robot,
            server,
            host: "www.microscape.example".to_string(),
            nodelay: true,
            accept_deflate: false,
            pipeline_buffer: 1024,
            flush_timeout: SimDuration::from_millis(50),
            app_flush: true,
            request_gen_time: SimDuration::from_millis(2),
            response_proc_time: SimDuration::from_millis(4),
            reset_backoff: SimDuration::ZERO,
        }
    }

    /// The paper's *initial* client: the persistent cache lives on disk
    /// as two files per object, making request construction and response
    /// handling expensive ("the overhead in our implementation became a
    /// performance bottleneck"). Used by the Table 3 reproduction.
    pub fn with_disk_cache(mut self) -> Self {
        self.request_gen_time = SimDuration::from_millis(65);
        self.response_proc_time = SimDuration::from_millis(15);
        self
    }

    /// Override the client CPU model.
    pub fn with_cpu(mut self, gen: SimDuration, proc: SimDuration) -> Self {
        self.request_gen_time = gen;
        self.response_proc_time = proc;
        self
    }

    /// Builder-style toggles.
    pub fn with_deflate(mut self, on: bool) -> Self {
        self.accept_deflate = on;
        self
    }

    /// Builder-style request-style override.
    pub fn with_style(mut self, style: RequestStyle) -> Self {
        self.style = style;
        self
    }

    /// Builder-style application-flush toggle.
    pub fn with_app_flush(mut self, on: bool) -> Self {
        self.app_flush = on;
        self
    }

    /// Builder-style flush-timer override.
    pub fn with_flush_timeout(mut self, t: SimDuration) -> Self {
        self.flush_timeout = t;
        self
    }

    /// Builder-style TCP_NODELAY toggle.
    pub fn with_nodelay(mut self, on: bool) -> Self {
        self.nodelay = on;
        self
    }

    /// Builder-style reset-backoff override.
    pub fn with_reset_backoff(mut self, t: SimDuration) -> Self {
        self.reset_backoff = t;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::HostId;

    #[test]
    fn robot_requests_are_compact() {
        let req = RequestStyle::Robot.request(
            Method::Get,
            "/images/solutions.gif",
            Version::Http11,
            "www.microscape.example",
        );
        let n = req.wire_len();
        assert!(
            (100..=250).contains(&n),
            "robot request is compact, got {n}"
        );
        // With revalidation headers it reaches the paper's ~190 B average.
        let conditional = req
            .with_header("If-None-Match", "\"2ca3-1a7b-33a1c7f2\"")
            .wire_len();
        assert!((160..=250).contains(&conditional), "got {conditional}");
    }

    #[test]
    fn browser_requests_are_verbose() {
        let robot = RequestStyle::Robot
            .request(Method::Get, "/x.gif", Version::Http10, "h.example")
            .wire_len();
        let nav = RequestStyle::Navigator
            .request(Method::Get, "/x.gif", Version::Http10, "h.example")
            .wire_len();
        let ie = RequestStyle::Explorer
            .request(Method::Get, "/x.gif", Version::Http10, "h.example")
            .wire_len();
        assert!(nav > robot);
        assert!(ie > nav, "IE ({ie}) should out-blather Navigator ({nav})");
    }

    #[test]
    fn mode_properties() {
        assert_eq!(
            ProtocolMode::Http10Parallel { max_connections: 4 }.version(),
            Version::Http10
        );
        assert_eq!(ProtocolMode::Http11Pipelined.version(), Version::Http11);
        assert!(ProtocolMode::Http11Pipelined.is_pipelined());
        assert!(!ProtocolMode::Http11Persistent.is_pipelined());
    }

    #[test]
    fn config_builders() {
        let c = ClientConfig::robot(ProtocolMode::Http11Pipelined, SockAddr::new(HostId(1), 80))
            .with_deflate(true)
            .with_app_flush(false)
            .with_nodelay(false);
        assert!(c.accept_deflate);
        assert!(!c.app_flush);
        assert!(!c.nodelay);
        assert_eq!(c.pipeline_buffer, 1024);
    }
}
