//! The robot's multiplexed transport: one framed connection
//! (`crates/httpmux`), every request a concurrent stream, pushed
//! subresources accepted straight into the cache.
//!
//! This is a child module of `robot` so it can drive the same CPU
//! model, cache, discovery, and statistics machinery as the HTTP/1.x
//! paths — a response that arrives on a stream is processed by exactly
//! the same `handle_response` as one that arrives on a socket.

use super::*;
use httpmux::{MuxConn, MuxEvent, ERR_CANCEL};
use httpwire::{StatusCode, Version};

/// Per-stream response under assembly.
#[derive(Debug, Default)]
struct StreamResponse {
    status: u16,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

/// State of the single multiplexed connection.
#[derive(Debug)]
pub(super) struct MuxState {
    pub(super) sock: SocketId,
    engine: MuxConn,
    connected: bool,
    /// Wire bytes taken from the engine, waiting for socket space.
    outbuf: Vec<u8>,
    /// Our request streams awaiting responses.
    jobs: BTreeMap<u32, Job>,
    /// Accepted push streams (server-initiated, even ids).
    promised: BTreeMap<u32, Job>,
    /// Responses under assembly, ours and pushed.
    resp: BTreeMap<u32, StreamResponse>,
    /// The stream carrying the start page (streaming discovery).
    html_stream: Option<u32>,
    first_byte_seen: bool,
}

impl MuxState {
    /// Anything still owed to us on this connection?
    pub(super) fn outstanding(&self) -> bool {
        !self.jobs.is_empty() || !self.promised.is_empty()
    }
}

impl HttpClient {
    pub(super) fn mux_outstanding(&self) -> bool {
        self.mux.as_ref().is_some_and(|m| m.outstanding())
    }

    pub(super) fn mux_sock(&self) -> Option<SocketId> {
        self.mux.as_ref().map(|m| m.sock)
    }

    /// In cautious (post-recovery) mode, serialize requests until one
    /// response survives — mirroring the pipelined path.
    pub(super) fn mux_may_issue(&self) -> bool {
        !self.cautious || self.mux.as_ref().map_or(true, |m| m.jobs.is_empty())
    }

    pub(super) fn mux_ensure_conn(&mut self, ctx: &mut Ctx<'_>) {
        if self.mux.is_some() {
            return;
        }
        let sock = ctx.connect(self.config.server);
        ctx.set_nodelay(sock, self.config.nodelay);
        self.stats.connections_opened += 1;
        self.mux = Some(MuxState {
            sock,
            engine: MuxConn::client(self.config.mode.push_enabled()),
            connected: false,
            outbuf: Vec::new(),
            jobs: BTreeMap::new(),
            promised: BTreeMap::new(),
            resp: BTreeMap::new(),
            html_stream: None,
            first_byte_seen: false,
        });
    }

    /// A generated request is ready: open a stream for it.
    pub(super) fn mux_place(&mut self, ctx: &mut Ctx<'_>, job: Job) {
        self.mux_ensure_conn(ctx);
        let is_start = self.is_start_page(&job.path);
        let mut fields = vec![
            (":method".to_string(), job.method.as_str().to_string()),
            (":path".to_string(), job.path.clone()),
        ];
        for (name, value) in &job.conditionals {
            fields.push((name.clone(), value.clone()));
        }
        for (name, value) in &self.extra_headers {
            fields.push((name.clone(), value.clone()));
        }
        let m = self.mux.as_mut().expect("mux conn just ensured");
        if ctx.probe_enabled() {
            ctx.probe_span(
                m.sock,
                SpanEvent::RequestQueued {
                    path: job.path.clone(),
                },
            );
        }
        let stream = m.engine.open_stream(&fields, true);
        ctx.probe_span(
            m.sock,
            SpanEvent::RequestWritten {
                count: 1,
                cause: FlushCause::App,
            },
        );
        if is_start {
            m.html_stream = Some(stream);
        }
        m.jobs.insert(stream, job);
        self.stats.requests_sent += 1;
        self.mux_push_out(ctx);
    }

    /// Drain engine output into the socket.
    pub(super) fn mux_push_out(&mut self, ctx: &mut Ctx<'_>) {
        let Some(m) = self.mux.as_mut() else {
            return;
        };
        if !m.connected {
            return; // transmitted on Connected
        }
        loop {
            if m.outbuf.is_empty() && m.engine.has_output() {
                m.engine.take_output(64 * 1024, &mut m.outbuf);
            }
            if m.outbuf.is_empty() {
                break;
            }
            let n = ctx.send(m.sock, &m.outbuf);
            if n == 0 {
                break;
            }
            m.outbuf.drain(..n);
        }
    }

    pub(super) fn mux_on_connected(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(m) = self.mux.as_mut() {
            m.connected = true;
        }
        self.mux_push_out(ctx);
    }

    pub(super) fn mux_on_readable(&mut self, ctx: &mut Ctx<'_>) {
        let Some(m) = self.mux.as_mut() else {
            return;
        };
        let sock = m.sock;
        let data = ctx.recv(sock, usize::MAX);
        if !data.is_empty() && !m.first_byte_seen && m.outstanding() {
            m.first_byte_seen = true;
            ctx.probe_span(sock, SpanEvent::FirstByte);
        }
        m.engine.feed(&data);
        loop {
            let Some(ev) = self.mux.as_mut().and_then(|m| m.engine.poll_event()) else {
                break;
            };
            match ev {
                MuxEvent::Settings { .. } => {}
                MuxEvent::Headers {
                    stream,
                    fields,
                    end_stream,
                } => {
                    if let Some(m) = self.mux.as_mut() {
                        let entry = m.resp.entry(stream).or_default();
                        for (name, value) in fields {
                            if name == ":status" {
                                entry.status = value.parse().unwrap_or(200);
                            } else if !name.starts_with(':') {
                                entry.headers.push((name, value));
                            }
                        }
                    }
                    if end_stream {
                        self.mux_complete_stream(ctx, stream);
                    }
                }
                MuxEvent::Data {
                    stream,
                    data,
                    end_stream,
                } => {
                    if let Some(m) = self.mux.as_mut() {
                        m.resp
                            .entry(stream)
                            .or_default()
                            .body
                            .extend_from_slice(&data);
                    }
                    self.mux_streaming_discovery(ctx, stream);
                    if end_stream {
                        self.mux_complete_stream(ctx, stream);
                    }
                }
                MuxEvent::PushPromise {
                    promised, fields, ..
                } => {
                    self.mux_on_push_promise(promised, fields);
                }
                MuxEvent::CancelledData { len, .. } => {
                    // Bytes the server had in flight on a push we refused.
                    self.stats.cancelled_push_bytes += len as u64;
                }
                MuxEvent::Reset { stream, .. } => {
                    // Server abandoned a stream: re-queue ours, drop pushes.
                    let job = self.mux.as_mut().and_then(|m| {
                        m.jobs
                            .remove(&stream)
                            .or_else(|| m.promised.remove(&stream))
                    });
                    if let Some(job) = job {
                        self.stats.retries += 1;
                        self.pending.push_back(job);
                    }
                }
                MuxEvent::ProtocolError(_) => {
                    ctx.abort(sock);
                    self.mux_recover(ctx);
                    return;
                }
            }
        }
        self.mux_push_out(ctx); // WINDOW_UPDATEs and SETTINGS acks
        self.pump(ctx);
        self.maybe_finish(ctx);
    }

    /// Decide whether to accept a promised subresource.
    fn mux_on_push_promise(&mut self, promised: u32, fields: Vec<(String, String)>) {
        let path = fields
            .iter()
            .find(|(n, _)| n == ":path")
            .map(|(_, v)| v.clone())
            .unwrap_or_default();
        let accept = self.config.mode.push_enabled()
            && !path.is_empty()
            && !self.completed.contains(&path)
            && !self
                .mux
                .as_ref()
                .is_some_and(|m| m.jobs.values().any(|j| j.path == path));
        if !accept {
            if let Some(m) = self.mux.as_mut() {
                m.engine.reset_stream(promised, ERR_CANCEL);
            }
            self.stats.cancelled_pushes += 1;
            return;
        }
        // The push replaces any fetch we were about to issue ourselves.
        self.pending.retain(|j| j.path != path);
        self.discovered.insert(path.clone());
        if let Some(m) = self.mux.as_mut() {
            m.promised.insert(
                promised,
                Job {
                    path,
                    method: Method::Get,
                    conditionals: Vec::new(),
                },
            );
        }
    }

    /// A stream finished: synthesize an `httpwire::Response` and run it
    /// through the shared response-processing CPU path.
    fn mux_complete_stream(&mut self, ctx: &mut Ctx<'_>, stream: u32) {
        let Some(m) = self.mux.as_mut() else {
            return;
        };
        let sock = m.sock;
        let assembled = m.resp.remove(&stream).unwrap_or_default();
        let pushed = m.promised.contains_key(&stream);
        let Some(job) = m
            .jobs
            .remove(&stream)
            .or_else(|| m.promised.remove(&stream))
        else {
            return; // completion of a stream we already cancelled
        };
        if m.html_stream == Some(stream) {
            m.html_stream = None;
        }
        m.first_byte_seen = false;
        if pushed {
            self.stats.pushed_responses += 1;
            self.stats.pushed_bytes += assembled.body.len() as u64;
        }
        let mut resp = Response::new(Version::Http11, StatusCode(assembled.status));
        for (name, value) in &assembled.headers {
            resp.headers.append(name, value.clone());
        }
        resp.body = bytes::Bytes::pooled_copy_from_slice(&assembled.body);
        if ctx.probe_enabled() {
            ctx.probe_span(
                sock,
                SpanEvent::BodyComplete {
                    path: job.path.clone(),
                },
            );
        }
        self.schedule_cpu(
            ctx,
            CpuOp::Proc { job, resp },
            self.config.response_proc_time,
        );
    }

    /// Issue requests for subresources already visible in the partial
    /// HTML body of the start-page stream.
    fn mux_streaming_discovery(&mut self, ctx: &mut Ctx<'_>, stream: u32) {
        if self.discovery_complete || !matches!(self.workload, Workload::Browse { .. }) {
            return;
        }
        let before = self.pending.len();
        {
            let Some(m) = self.mux.as_ref() else {
                return;
            };
            if m.html_stream != Some(stream) {
                return;
            }
            let Some(r) = m.resp.get(&stream) else {
                return;
            };
            // `discovered`/`pending` are disjoint fields from `mux`, so
            // the partial body is scanned in place.
            Self::discover_sources(&mut self.discovered, &mut self.pending, &r.body);
        }
        if self.pending.len() > before {
            self.pump(ctx);
        }
    }

    /// The mux connection died with work outstanding: re-queue it all on
    /// a fresh connection.
    pub(super) fn mux_recover(&mut self, ctx: &mut Ctx<'_>) {
        let Some(m) = self.mux.take() else {
            return;
        };
        let outstanding = m.jobs.len() + m.promised.len();
        if outstanding > 0 {
            self.stats.retries += outstanding as u64;
            self.cautious = true;
            // Requests first (stream order), then interrupted pushes —
            // those become ordinary fetches on the new connection.
            for (_, job) in m.promised.into_iter().rev() {
                self.pending.push_front(job);
            }
            for (_, job) in m.jobs.into_iter().rev() {
                self.pending.push_front(job);
            }
        }
        self.pump(ctx);
    }
}
