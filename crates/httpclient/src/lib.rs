//! # httpclient — the robot client driving every experiment
//!
//! A simulated HTTP client modelled on the paper's libwww robot, with the
//! browser profiles of Tables 10–11. It implements the paper's three
//! connection strategies:
//!
//! * **HTTP/1.0 with parallel connections** (one request per connection,
//!   four simultaneous by default, optional Keep-Alive reuse);
//! * **HTTP/1.1 persistent** (one connection, strictly serialized);
//! * **HTTP/1.1 pipelined** (one connection, requests batched in a
//!   1024-byte output buffer flushed by size, by a timer, or explicitly
//!   by the application — the tuning the paper found decisive).
//!
//! Plus the surrounding machinery the experiments need: streaming HTML
//! parsing (image requests are issued while the page is still arriving,
//! and arrive *earlier* when the HTML is deflate-compressed), a
//! validator-carrying client cache, HEAD/conditional-GET revalidation
//! profiles, deflate decoding, and recovery from early server closes.
//!
//! ```
//! use httpclient::{ClientConfig, HttpClient, ProtocolMode, Workload};
//! use netsim::{HostId, SockAddr};
//!
//! let server = SockAddr::new(HostId(1), 80);
//! let config = ClientConfig::robot(ProtocolMode::Http11Pipelined, server);
//! let client = HttpClient::new(config, Workload::Browse { start: "/index.html".into() });
//! assert!(!client.stats.done);
//! // install with: sim.install_app(host, Box::new(client))
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod robot;

pub use cache::{CacheEntry, ClientCache};
pub use config::{ClientConfig, ProtocolMode, RequestStyle, RevalidationStyle, Workload};
pub use robot::{ClientStats, FetchRecord, HttpClient};
