//! The client's persistent cache.
//!
//! Stores entity metadata (validators, type, size) and optionally bodies.
//! The revalidation experiments prime this cache — as if a first visit
//! already happened — and the client then issues the appropriate
//! conditional requests. The paper notes libwww's two-files-per-object
//! persistent cache became a bottleneck and was moved to a memory file
//! system; ours models the memory-backed variant (no I/O cost).

use httpwire::validators::{ETag, Validators};
use std::collections::HashMap;

/// One cached entity.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheEntry {
    /// Validators learned from the response.
    pub validators: Validators,
    /// MIME type of the cached entity.
    pub content_type: String,
    /// Size of the cached body in bytes.
    pub body_len: usize,
    /// Image paths discovered when this entity was HTML (used to schedule
    /// revalidation of embedded objects without re-parsing).
    pub embedded: Vec<String>,
}

/// Path-keyed client cache.
#[derive(Debug, Clone, Default)]
pub struct ClientCache {
    // xtask: allow(hash-collections): keyed lookup only (get/insert by
    // path); never iterated, so map order cannot leak into a run.
    entries: HashMap<String, CacheEntry>,
}

impl ClientCache {
    /// Create a new, empty instance.
    pub fn new() -> Self {
        ClientCache::default()
    }

    /// Store or replace an entry.
    pub fn insert(&mut self, path: &str, entry: CacheEntry) {
        self.entries.insert(path.to_string(), entry);
    }

    /// Look up a cached entry by path.
    pub fn get(&self, path: &str) -> Option<&CacheEntry> {
        self.entries.get(path)
    }

    /// Whether an entry with this name exists.
    pub fn contains(&self, path: &str) -> bool {
        self.entries.contains_key(path)
    }

    /// Number of contained elements.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is contained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Convenience for priming from known content: derive the validators
    /// a server built with the same body/mtime would produce.
    pub fn prime(
        &mut self,
        path: &str,
        body: &[u8],
        content_type: &str,
        mtime: u64,
        embedded: Vec<String>,
    ) {
        self.insert(
            path,
            CacheEntry {
                validators: Validators {
                    etag: Some(ETag::derive(body, mtime)),
                    last_modified: Some(mtime),
                },
                content_type: content_type.to_string(),
                body_len: body.len(),
                embedded,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prime_and_lookup() {
        let mut c = ClientCache::new();
        c.prime("/x.gif", b"GIFDATA", "image/gif", 100, vec![]);
        assert!(c.contains("/x.gif"));
        let e = c.get("/x.gif").unwrap();
        assert_eq!(e.body_len, 7);
        assert_eq!(e.content_type, "image/gif");
        assert!(e.validators.etag.is_some());
        assert!(!c.contains("/y.gif"));
    }

    #[test]
    fn primed_etag_matches_server_derivation() {
        let mut c = ClientCache::new();
        c.prime("/a", b"same bytes", "text/plain", 42, vec![]);
        let server_side = ETag::derive(b"same bytes", 42);
        assert_eq!(c.get("/a").unwrap().validators.etag, Some(server_side));
    }

    #[test]
    fn embedded_list_preserved() {
        let mut c = ClientCache::new();
        c.prime(
            "/index.html",
            b"<html>",
            "text/html",
            1,
            vec!["/a.gif".into(), "/b.gif".into()],
        );
        assert_eq!(c.get("/index.html").unwrap().embedded.len(), 2);
    }
}
