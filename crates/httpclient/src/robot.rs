//! The HTTP robot — the paper's libwww-based client — as a simulated
//! application.
//!
//! Implements the three connection strategies under test (HTTP/1.0 with
//! parallel connections, HTTP/1.1 persistent-serialized, HTTP/1.1
//! buffered pipelining), the request-buffer flush machinery (size
//! threshold, flush timer, explicit application flush), streaming HTML
//! parsing so pipelined image requests are issued while the document is
//! still arriving, deflate content decoding, a persistent cache with
//! HTTP/1.1 validators, and recovery from early server closes (both the
//! graceful half-close and the RST hazard).
//!
//! ## The client CPU model
//!
//! The paper found the client implementation mattered as much as the
//! protocol: libwww's disk-backed persistent cache (two files per object)
//! made building conditional requests and storing responses expensive
//! enough to dominate the initial Table 3 numbers, and the final runs
//! moved it to a memory file system. The robot models this with a single
//! client CPU: constructing each request costs
//! [`ClientConfig::request_gen_time`] and handling each response costs
//! [`ClientConfig::response_proc_time`], both serialized FIFO. Request
//! generation gates transmission; response processing gates the *next*
//! request in serialized modes (and is invisible to packet timing in
//! pipelined mode, exactly as the paper observed).

use crate::cache::{CacheEntry, ClientCache};
use crate::config::{ClientConfig, ProtocolMode, RevalidationStyle, Workload};
use httpwire::coding;
use httpwire::validators::Validators;
use httpwire::{format_http_date, ContentCoding, ETag, Method, Request, Response, ResponseParser};
use netsim::sim::{App, AppEvent, Ctx};
use netsim::{FlushCause, SimTime, SocketId, SpanEvent};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

mod mux;

/// Flush-timer token (CPU-op tokens start at 1).
const FLUSH_TOKEN: u64 = 0;

/// Reset-backoff timer token (CPU-op tokens count up from 1 and can
/// never reach it).
const BACKOFF_TOKEN: u64 = u64::MAX;

/// The outcome of one fetched object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FetchRecord {
    /// Request path.
    pub path: String,
    /// HTTP status code received.
    pub status: u16,
    /// Decoded entity bytes received (0 for 304 / HEAD).
    pub body_len: usize,
    /// Entity bytes as transferred (differs from `body_len` under
    /// deflate).
    pub wire_body_len: usize,
    /// The entity arrived deflate-coded.
    pub deflated: bool,
    /// True when the fetch was answered `304 Not Modified`.
    pub validated: bool,
}

/// Client-side counters.
#[derive(Debug, Clone, Default)]
pub struct ClientStats {
    /// Every completed fetch, in completion order.
    pub fetched: Vec<FetchRecord>,
    /// Requests transmitted (including retries).
    pub requests_sent: u64,
    /// TCP connections opened over the run.
    pub connections_opened: u64,
    /// Requests re-sent after an early server close.
    pub retries: u64,
    /// Connection resets observed.
    pub resets: u64,
    /// Pushed responses accepted into the cache (multiplexed mode).
    pub pushed_responses: u64,
    /// Entity bytes that arrived via accepted pushes.
    pub pushed_bytes: u64,
    /// PUSH_PROMISEs refused with RST_STREAM.
    pub cancelled_pushes: u64,
    /// Wasted wire bytes: push DATA that arrived after we cancelled.
    pub cancelled_push_bytes: u64,
    /// All work completed.
    pub done: bool,
}

impl ClientStats {
    /// Count of 304 responses.
    pub fn validated(&self) -> usize {
        self.fetched.iter().filter(|f| f.validated).count()
    }

    /// Total decoded entity bytes.
    pub fn body_bytes(&self) -> usize {
        self.fetched.iter().map(|f| f.body_len).sum()
    }
}

/// A queued unit of work.
#[derive(Debug, Clone)]
struct Job {
    path: String,
    method: Method,
    /// Extra conditional headers, e.g. `If-None-Match`.
    conditionals: Vec<(String, String)>,
}

/// Work scheduled on the client CPU.
#[derive(Debug)]
enum CpuOp {
    /// Build and transmit a request.
    Gen(Job),
    /// Process a received response.
    Proc {
        /// The fetch this response answers.
        job: Job,
        /// The parsed response.
        resp: Response,
    },
}

#[derive(Debug)]
struct Conn {
    parser: ResponseParser,
    /// Jobs transmitted and awaiting responses (front = next response).
    sent: VecDeque<Job>,
    /// Request bytes not yet flushed to the socket (pipeline buffer).
    reqbuf: Vec<u8>,
    /// Flushed bytes the socket has not yet accepted.
    outbuf: Vec<u8>,
    connected: bool,
    /// Anything has been flushed on this connection yet.
    flushed_any: bool,
    /// This connection's work is done (awaiting close).
    finished: bool,
    /// Requests queued in `reqbuf` since the last flush (probe spans).
    unwritten: u32,
    /// The current front-of-line response has already produced a
    /// `FirstByte` span mark.
    first_byte_seen: bool,
}

impl Conn {
    fn new() -> Conn {
        Conn {
            parser: ResponseParser::new(),
            sent: VecDeque::new(),
            reqbuf: Vec::new(),
            outbuf: Vec::new(),
            connected: false,
            flushed_any: false,
            finished: false,
            unwritten: 0,
            first_byte_seen: false,
        }
    }
}

/// The robot application. Install on a host with
/// `sim.install_app(host, Box::new(client))`; read results back through
/// [`HttpClient::stats`] after the run.
pub struct HttpClient {
    config: ClientConfig,
    workload: Workload,
    /// The persistent cache (primed by revalidation experiments).
    pub cache: ClientCache,
    /// Work not yet assigned to a connection.
    pending: VecDeque<Job>,
    /// Paths fetched successfully.
    completed: BTreeSet<String>,
    /// Ordered map: several paths iterate the live connections (idle-conn
    /// search, flush-all, finish checks), so the iteration order must be
    /// deterministic for runs to be reproducible.
    conns: BTreeMap<SocketId, Conn>,
    /// The single connection used by the 1.1 modes.
    main_conn: Option<SocketId>,
    /// The single framed connection used by the multiplexed mode.
    mux: Option<mux::MuxState>,
    /// Image paths discovered in the HTML so far.
    discovered: BTreeSet<String>,
    /// The HTML page has fully arrived and been parsed.
    discovery_complete: bool,
    flush_armed: bool,
    /// A reset-backoff pause is in progress: no new requests go out
    /// until its timer fires.
    backoff_armed: bool,
    /// After an unexpected connection loss the client stops pipelining
    /// until one response completes on the fresh connection: without this
    /// a server that resets mid-pipeline (the naive-close hazard) can
    /// livelock a client that always re-pipelines the full batch.
    cautious: bool,
    /// Client CPU: outstanding ops keyed by timer token.
    cpu_ops: BTreeMap<u64, CpuOp>,
    next_token: u64,
    cpu_busy: SimTime,
    /// A request-generation op is in flight (they are strictly serial).
    gen_scheduled: bool,
    /// Extra headers appended to every request (experiment hooks, e.g.
    /// the leading-range revisit idiom).
    extra_headers: Vec<(String, String)>,
    /// Attach `If-Range` from the cached validator to conditional
    /// requests, enabling 206 metadata probes on changed entities.
    if_range_from_cache: bool,
    /// Run statistics.
    pub stats: ClientStats,
}

impl HttpClient {
    /// Create a new, empty instance.
    pub fn new(config: ClientConfig, workload: Workload) -> HttpClient {
        HttpClient::with_cache(config, workload, ClientCache::new())
    }

    /// Create with a primed cache (revalidation experiments).
    pub fn with_cache(config: ClientConfig, workload: Workload, cache: ClientCache) -> HttpClient {
        HttpClient {
            config,
            workload,
            cache,
            pending: VecDeque::new(),
            completed: BTreeSet::new(),
            conns: BTreeMap::new(),
            main_conn: None,
            mux: None,
            discovered: BTreeSet::new(),
            discovery_complete: false,
            flush_armed: false,
            backoff_armed: false,
            cautious: false,
            cpu_ops: BTreeMap::new(),
            next_token: 1,
            cpu_busy: SimTime::ZERO,
            gen_scheduled: false,
            extra_headers: Vec::new(),
            if_range_from_cache: false,
            stats: ClientStats::default(),
        }
    }

    /// The configuration this client runs with.
    pub fn config(&self) -> &ClientConfig {
        &self.config
    }

    /// Append fixed extra headers to every generated request — the hook
    /// behind the range-revisit experiments.
    pub fn set_extra_conditionals(&mut self, headers: Vec<(String, String)>) {
        self.extra_headers = headers;
    }

    /// Attach `If-Range` (from the cached ETag) to conditional requests,
    /// so ranges apply only while the entity is unchanged.
    pub fn set_if_range_from_cache(&mut self, on: bool) {
        self.if_range_from_cache = on;
    }

    // ------------------------------------------------------------------
    // Workload expansion
    // ------------------------------------------------------------------

    fn conditionals_for(&self, path: &str, style: RevalidationStyle) -> Vec<(String, String)> {
        let Some(entry) = self.cache.get(path) else {
            return Vec::new();
        };
        match style {
            RevalidationStyle::ConditionalGetEtag => {
                let mut v = Vec::new();
                if let Some(etag) = &entry.validators.etag {
                    v.push(("If-None-Match".to_string(), etag.to_header_value()));
                }
                v
            }
            RevalidationStyle::ConditionalGetDate
            | RevalidationStyle::ConditionalGetDateFullHtml => entry
                .validators
                .last_modified
                .map(|lm| vec![("If-Modified-Since".to_string(), format_http_date(lm))])
                .unwrap_or_default(),
            RevalidationStyle::HeadRequests => Vec::new(),
        }
    }

    fn expand_workload(&mut self) {
        match self.workload.clone() {
            Workload::Browse { start } => {
                self.pending.push_back(Job {
                    path: start,
                    method: Method::Get,
                    conditionals: Vec::new(),
                });
                // Images are discovered from the arriving HTML.
            }
            Workload::Revalidate { start, style } => {
                self.discovery_complete = true;
                let embedded = self
                    .cache
                    .get(&start)
                    .map(|e| e.embedded.clone())
                    .unwrap_or_default();
                match style {
                    RevalidationStyle::HeadRequests => {
                        // Old libwww 4.1D: plain GET for the page, HEAD for
                        // every image.
                        self.pending.push_back(Job {
                            path: start,
                            method: Method::Get,
                            conditionals: Vec::new(),
                        });
                        for path in embedded {
                            self.pending.push_back(Job {
                                path,
                                method: Method::Head,
                                conditionals: Vec::new(),
                            });
                        }
                    }
                    _ => {
                        // IE's profile re-fetches the page unconditionally.
                        let conds = if style == RevalidationStyle::ConditionalGetDateFullHtml {
                            Vec::new()
                        } else {
                            self.conditionals_for(&start, style)
                        };
                        self.pending.push_back(Job {
                            path: start,
                            method: Method::Get,
                            conditionals: conds,
                        });
                        for path in embedded {
                            let conds = self.conditionals_for(&path, style);
                            self.pending.push_back(Job {
                                path,
                                method: Method::Get,
                                conditionals: conds,
                            });
                        }
                    }
                }
            }
            Workload::FetchList { paths } => {
                self.discovery_complete = true;
                for path in paths {
                    self.pending.push_back(Job {
                        path,
                        method: Method::Get,
                        conditionals: Vec::new(),
                    });
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // The client CPU
    // ------------------------------------------------------------------

    fn schedule_cpu(&mut self, ctx: &mut Ctx<'_>, op: CpuOp, cost: netsim::SimDuration) {
        let now = ctx.now();
        let start = self.cpu_busy.max(now);
        let done = start + cost;
        self.cpu_busy = done;
        let token = self.next_token;
        self.next_token += 1;
        self.cpu_ops.insert(token, op);
        ctx.set_timer(token, done.since(now));
    }

    /// Start generating the next request if the mode allows it.
    fn pump(&mut self, ctx: &mut Ctx<'_>) {
        if self.gen_scheduled || self.backoff_armed {
            return;
        }
        if self.pending.is_empty() {
            self.maybe_finish(ctx);
            return;
        }
        let allowed = match self.config.mode {
            ProtocolMode::Http11Pipelined => {
                // Open the connection early so the handshake overlaps
                // request generation.
                self.ensure_main_conn(ctx);
                if self.cautious {
                    // Recovering from a lost connection: serialize until
                    // one response survives.
                    let sock = self.main_conn.unwrap();
                    self.conns[&sock].sent.is_empty()
                } else {
                    true
                }
            }
            ProtocolMode::Http11Persistent => {
                self.ensure_main_conn(ctx);
                let sock = self.main_conn.unwrap();
                self.conns[&sock].sent.is_empty()
            }
            ProtocolMode::Http10Parallel { max_connections } => {
                // A slot is free, or an idle Keep-Alive connection can be
                // reused.
                self.active_conns() < max_connections || self.has_idle_conn()
            }
            ProtocolMode::Multiplexed { .. } => {
                // Streams are concurrent; open the connection early so the
                // handshake overlaps request generation.
                self.mux_ensure_conn(ctx);
                self.mux_may_issue()
            }
        };
        if allowed {
            let job = self.pending.pop_front().unwrap();
            self.gen_scheduled = true;
            self.schedule_cpu(ctx, CpuOp::Gen(job), self.config.request_gen_time);
        }
    }

    fn active_conns(&self) -> usize {
        self.conns.values().filter(|c| !c.finished).count()
    }

    /// An established Keep-Alive connection with nothing outstanding.
    fn has_idle_conn(&self) -> bool {
        self.conns
            .values()
            .any(|c| !c.finished && c.connected && c.sent.is_empty() && c.reqbuf.is_empty())
    }

    fn ensure_main_conn(&mut self, ctx: &mut Ctx<'_>) {
        let alive = matches!(self.main_conn, Some(s) if self.conns.contains_key(&s));
        if !alive {
            let s = self.open_conn(ctx);
            self.main_conn = Some(s);
        }
    }

    /// A generated request is ready: place it on a connection.
    fn place_request(&mut self, ctx: &mut Ctx<'_>, job: Job) {
        match self.config.mode {
            ProtocolMode::Http11Pipelined => {
                self.ensure_main_conn(ctx);
                let sock = self.main_conn.unwrap();
                self.queue_request(ctx, sock, job);
                let conn = &self.conns[&sock];
                let buffered = conn.reqbuf.len();
                let first_flush = !conn.flushed_any;
                if buffered >= self.config.pipeline_buffer {
                    self.flush_requests(ctx, sock, FlushCause::Buffer);
                } else if self.config.app_flush && first_flush {
                    // The paper's tuning: force the first (HTML) request
                    // out immediately.
                    self.flush_requests(ctx, sock, FlushCause::App);
                } else if self.config.app_flush
                    && self.discovery_complete
                    && self.pending.is_empty()
                {
                    // No more requests can ever join this batch.
                    self.flush_requests(ctx, sock, FlushCause::App);
                } else {
                    self.arm_flush_timer(ctx);
                }
            }
            ProtocolMode::Http11Persistent => {
                self.ensure_main_conn(ctx);
                let sock = self.main_conn.unwrap();
                self.queue_request(ctx, sock, job);
                self.flush_requests(ctx, sock, FlushCause::App);
            }
            ProtocolMode::Http10Parallel { .. } => {
                // Prefer an idle keep-alive connection, else open one.
                let idle = self
                    .conns
                    .iter()
                    .find(|(_, c)| !c.finished && c.connected && c.sent.is_empty())
                    .map(|(s, _)| *s);
                let sock = idle.unwrap_or_else(|| self.open_conn(ctx));
                self.queue_request(ctx, sock, job);
                self.flush_requests(ctx, sock, FlushCause::App);
            }
            ProtocolMode::Multiplexed { .. } => {
                self.mux_place(ctx, job);
            }
        }
    }

    // ------------------------------------------------------------------
    // Request transmission
    // ------------------------------------------------------------------

    fn build_request(&self, job: &Job) -> Request {
        let mut req = self.config.style.request(
            job.method,
            &job.path,
            self.config.mode.version(),
            &self.config.host,
        );
        // Transport compression is negotiated for documents, not for
        // already-compressed image formats.
        if self.config.accept_deflate && is_html_path(&job.path) {
            req.headers.append("Accept-Encoding", "deflate");
        }
        for (name, value) in &job.conditionals {
            req.headers.append(name, value);
        }
        for (name, value) in &self.extra_headers {
            req.headers.append(name, value);
        }
        if self.if_range_from_cache && !job.conditionals.is_empty() {
            if let Some(etag) = self
                .cache
                .get(&job.path)
                .and_then(|e| e.validators.etag.as_ref())
            {
                req.headers.set("If-Range", etag.to_header_value());
            }
        }
        req
    }

    /// Append a job's request to a connection's pipeline buffer.
    fn queue_request(&mut self, ctx: &mut Ctx<'_>, sock: SocketId, job: Job) {
        if ctx.probe_enabled() {
            ctx.probe_span(
                sock,
                SpanEvent::RequestQueued {
                    path: job.path.clone(),
                },
            );
        }
        let req = self.build_request(&job);
        let conn = self.conns.get_mut(&sock).expect("live conn");
        conn.parser.expect(job.method);
        conn.reqbuf.extend_from_slice(&req.to_bytes());
        conn.sent.push_back(job);
        conn.unwritten += 1;
        self.stats.requests_sent += 1;
    }

    /// Push already-flushed bytes into the socket.
    fn push_out(&mut self, ctx: &mut Ctx<'_>, sock: SocketId) {
        let Some(conn) = self.conns.get_mut(&sock) else {
            return;
        };
        if !conn.connected {
            return; // transmitted on Connected
        }
        while !conn.outbuf.is_empty() {
            let n = ctx.send(sock, &conn.outbuf);
            if n == 0 {
                break;
            }
            conn.outbuf.drain(..n);
        }
    }

    /// Flush decision taken: move the request buffer to the socket.
    fn flush_requests(&mut self, ctx: &mut Ctx<'_>, sock: SocketId, cause: FlushCause) {
        let Some(conn) = self.conns.get_mut(&sock) else {
            return;
        };
        if !conn.reqbuf.is_empty() {
            let reqs = std::mem::take(&mut conn.reqbuf);
            conn.outbuf.extend_from_slice(&reqs);
            conn.flushed_any = true;
            let count = std::mem::take(&mut conn.unwritten);
            ctx.probe_span(sock, SpanEvent::RequestWritten { count, cause });
        }
        self.push_out(ctx, sock);
    }

    fn flush_all(&mut self, ctx: &mut Ctx<'_>, cause: FlushCause) {
        let socks: Vec<SocketId> = self.conns.keys().copied().collect();
        for s in socks {
            self.flush_requests(ctx, s, cause);
        }
    }

    fn arm_flush_timer(&mut self, ctx: &mut Ctx<'_>) {
        if !self.flush_armed {
            self.flush_armed = true;
            ctx.set_timer(FLUSH_TOKEN, self.config.flush_timeout);
        }
    }

    fn open_conn(&mut self, ctx: &mut Ctx<'_>) -> SocketId {
        let sock = ctx.connect(self.config.server);
        ctx.set_nodelay(sock, self.config.nodelay);
        self.conns.insert(sock, Conn::new());
        self.stats.connections_opened += 1;
        sock
    }

    /// All work complete? Then half-close everything and mark done.
    fn maybe_finish(&mut self, ctx: &mut Ctx<'_>) {
        if self.stats.done
            || self.gen_scheduled
            || !self.pending.is_empty()
            || !self.discovery_complete
            || self.conns.values().any(|c| !c.sent.is_empty())
            || self.mux_outstanding()
        {
            return;
        }
        self.stats.done = true;
        let socks: Vec<SocketId> = self.conns.keys().copied().collect();
        for s in socks {
            ctx.shutdown_write(s);
        }
        if let Some(s) = self.mux_sock() {
            ctx.shutdown_write(s);
        }
    }

    // ------------------------------------------------------------------
    // Response handling
    // ------------------------------------------------------------------

    /// Decode a body according to its Content-Encoding.
    fn decode_body(resp: &Response) -> (Vec<u8>, bool) {
        match coding::declared_coding(&resp.headers) {
            Ok(ContentCoding::Deflate) => (
                coding::decode(ContentCoding::Deflate, &resp.body)
                    .unwrap_or_else(|_| resp.body.to_vec()),
                true,
            ),
            _ => (resp.body.to_vec(), false),
        }
    }

    /// Complete processing of a response (runs after the CPU proc delay).
    fn handle_response(&mut self, ctx: &mut Ctx<'_>, job: Job, resp: Response) {
        // A completed response proves the path works again.
        self.cautious = false;
        let (body, deflated) = Self::decode_body(&resp);
        let validated = resp.status.0 == 304;
        self.stats.fetched.push(FetchRecord {
            path: job.path.clone(),
            status: resp.status.0,
            body_len: body.len(),
            wire_body_len: resp.body.len(),
            deflated,
            validated,
        });
        self.completed.insert(job.path.clone());

        // Update the cache from the response validators.
        if resp.status.0 == 200 {
            let etag = resp.headers.get("ETag").and_then(ETag::parse);
            let last_modified = resp
                .headers
                .get("Last-Modified")
                .and_then(httpwire::parse_http_date);
            let content_type = resp
                .headers
                .get("Content-Type")
                .unwrap_or("application/octet-stream")
                .to_string();
            let embedded = if self.is_start_page(&job.path) {
                image_sources(&body)
            } else {
                Vec::new()
            };
            self.cache.insert(
                &job.path,
                CacheEntry {
                    validators: Validators {
                        etag,
                        last_modified,
                    },
                    content_type,
                    body_len: body.len(),
                    embedded,
                },
            );
        }

        // Browse discovery: the HTML has fully arrived.
        if self.is_start_page(&job.path) && matches!(self.workload, Workload::Browse { .. }) {
            self.discover_from_html(&body);
            self.discovery_complete = true;
        }

        self.pump(ctx);
        self.maybe_finish(ctx);
    }

    fn is_start_page(&self, path: &str) -> bool {
        match &self.workload {
            Workload::Browse { start } | Workload::Revalidate { start, .. } => start == path,
            Workload::FetchList { .. } => false,
        }
    }

    /// Queue fetches for newly discovered image references.
    fn discover_from_html(&mut self, partial_html: &[u8]) {
        Self::discover_sources(&mut self.discovered, &mut self.pending, partial_html);
    }

    /// Scan `html_bytes` for `<img src>` references and queue each one
    /// not seen before. Takes the two fields it mutates (not `&mut
    /// self`) so streaming discovery can run it while the connection's
    /// parse buffer is still borrowed — that's what lets the hot path
    /// scan the received prefix in place instead of copying it. Only a
    /// genuinely new source allocates (its path `String`, at most once
    /// per image on the page); a re-scan that finds nothing new is
    /// allocation-free.
    fn discover_sources(
        discovered: &mut BTreeSet<String>,
        pending: &mut VecDeque<Job>,
        html_bytes: &[u8],
    ) {
        let text = String::from_utf8_lossy(html_bytes);
        webcontent::html::for_each_inline_image_source(&text, |src| {
            if !discovered.contains(src) {
                discovered.insert(src.to_string());
                pending.push_back(Job {
                    path: src.to_string(),
                    method: Method::Get,
                    conditionals: Vec::new(),
                });
            }
        });
    }

    /// Streaming discovery: look at the in-progress HTML response and
    /// issue requests for images already visible.
    fn streaming_discovery(&mut self, ctx: &mut Ctx<'_>, sock: SocketId) {
        if self.discovery_complete || !matches!(self.workload, Workload::Browse { .. }) {
            return;
        }
        // Only the front-of-line response can be in progress; discovery
        // applies when that is the start page.
        {
            let Some(conn) = self.conns.get(&sock) else {
                return;
            };
            let Some(front) = conn.sent.front() else {
                return;
            };
            if !self.is_start_page(&front.path) {
                return;
            }
        }
        let Some(conn) = self.conns.get_mut(&sock) else {
            return;
        };
        let Some((headers, partial)) = conn.parser.in_progress() else {
            return;
        };
        let deflated = matches!(coding::declared_coding(headers), Ok(ContentCoding::Deflate));
        // A compressed prefix must be inflated into scratch, but a plain
        // one is scanned in place — no per-chunk copy of the prefix.
        let decompressed;
        let visible: &[u8] = if deflated {
            decompressed = flate::zlib::decompress_prefix(partial).unwrap_or_default();
            &decompressed
        } else {
            partial
        };
        let before = self.pending.len();
        Self::discover_sources(&mut self.discovered, &mut self.pending, visible);
        if self.pending.len() > before {
            self.pump(ctx);
        }
    }

    /// Server went away with requests outstanding: requeue and retry.
    fn recover_outstanding(&mut self, ctx: &mut Ctx<'_>, sock: SocketId) {
        let Some(mut conn) = self.conns.remove(&sock) else {
            return;
        };
        if self.main_conn == Some(sock) {
            self.main_conn = None;
        }
        // Parse anything already buffered first (data that survived),
        // scheduling normal response processing for it.
        while let Ok(Some(resp)) = conn.parser.next() {
            if let Some(job) = conn.sent.pop_front() {
                self.schedule_cpu(
                    ctx,
                    CpuOp::Proc { job, resp },
                    self.config.response_proc_time,
                );
            }
        }
        let outstanding = conn.sent.len();
        if outstanding > 0 {
            self.stats.retries += outstanding as u64;
            self.cautious = true;
            for job in conn.sent.into_iter().rev() {
                self.pending.push_front(job);
            }
        }
        self.pump(ctx);
    }

    fn on_readable(&mut self, ctx: &mut Ctx<'_>, sock: SocketId) {
        let data = ctx.recv(sock, usize::MAX);
        let Some(conn) = self.conns.get_mut(&sock) else {
            return;
        };
        if !data.is_empty() && !conn.sent.is_empty() && !conn.first_byte_seen {
            conn.first_byte_seen = true;
            ctx.probe_span(sock, SpanEvent::FirstByte);
        }
        conn.parser.feed(&data);
        loop {
            let Some(conn) = self.conns.get_mut(&sock) else {
                return;
            };
            match conn.parser.next() {
                Ok(Some(resp)) => {
                    let Some(job) = conn.sent.pop_front() else {
                        break; // unsolicited response; drop
                    };
                    conn.first_byte_seen = false;
                    if ctx.probe_enabled() {
                        ctx.probe_span(
                            sock,
                            SpanEvent::BodyComplete {
                                path: job.path.clone(),
                            },
                        );
                    }
                    // HTTP/1.0 semantics: without keep-alive the server
                    // will close after this response.
                    if !resp.keeps_alive() {
                        conn.finished = true;
                    }
                    self.schedule_cpu(
                        ctx,
                        CpuOp::Proc { job, resp },
                        self.config.response_proc_time,
                    );
                }
                Ok(None) => break,
                Err(_) => {
                    // Malformed response: abandon the connection.
                    ctx.abort(sock);
                    self.recover_outstanding(ctx, sock);
                    return;
                }
            }
        }
        self.streaming_discovery(ctx, sock);
        self.pump(ctx);
        self.maybe_finish(ctx);
    }
}

/// Does a path name an HTML document (transport compression applies)?
fn is_html_path(path: &str) -> bool {
    path.ends_with(".html") || path.ends_with(".htm") || path.ends_with('/')
}

/// Extract `<img src>` references in document order.
fn image_sources(html_bytes: &[u8]) -> Vec<String> {
    webcontent::html::inline_image_sources(&String::from_utf8_lossy(html_bytes))
}

impl App for HttpClient {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: AppEvent) {
        match event {
            AppEvent::Start => {
                self.expand_workload();
                self.pump(ctx);
            }
            AppEvent::Connected(s) => {
                if self.mux_sock() == Some(s) {
                    self.mux_on_connected(ctx);
                    return;
                }
                if let Some(conn) = self.conns.get_mut(&s) {
                    conn.connected = true;
                }
                // Flush-decided bytes accumulated during the handshake go
                // out now; the request buffer keeps waiting for its flush
                // decision.
                self.push_out(ctx, s);
            }
            AppEvent::Readable(s) => {
                if self.mux_sock() == Some(s) {
                    self.mux_on_readable(ctx);
                    return;
                }
                self.on_readable(ctx, s);
            }
            AppEvent::Timer(FLUSH_TOKEN) if self.flush_armed => {
                self.flush_armed = false;
                // Reaching the backstop timer means the application missed
                // a flush opportunity — the paper's extra-RTT bug.
                self.flush_all(ctx, FlushCause::Timer);
            }
            AppEvent::Timer(BACKOFF_TOKEN) if self.backoff_armed => {
                self.backoff_armed = false;
                self.pump(ctx);
                self.maybe_finish(ctx);
            }
            AppEvent::Timer(token) => match self.cpu_ops.remove(&token) {
                Some(CpuOp::Gen(job)) => {
                    self.gen_scheduled = false;
                    if self.backoff_armed {
                        // A reset landed while this request was being
                        // built: hold it until the backoff expires.
                        self.pending.push_front(job);
                    } else {
                        self.place_request(ctx, job);
                        self.pump(ctx);
                    }
                }
                Some(CpuOp::Proc { job, resp }) => {
                    self.handle_response(ctx, job, resp);
                }
                None => {}
            },
            AppEvent::SendSpace(s) => {
                if self.mux_sock() == Some(s) {
                    self.mux_push_out(ctx);
                } else {
                    self.push_out(ctx, s);
                }
            }
            AppEvent::PeerFin(s) if self.mux_sock() == Some(s) => {
                // Server half-closed the framed connection.
                ctx.shutdown_write(s);
                if self.mux_outstanding() {
                    // Streams died unanswered: retry on a fresh connection.
                    self.mux_recover(ctx);
                }
                self.maybe_finish(ctx);
            }
            AppEvent::PeerFin(s) => {
                // Flush any close-delimited response.
                let flushed = self
                    .conns
                    .get_mut(&s)
                    .and_then(|conn| match conn.parser.finish() {
                        Ok(Some(resp)) => conn.sent.pop_front().map(|job| (job, resp)),
                        _ => None,
                    });
                if let Some((job, resp)) = flushed {
                    if ctx.probe_enabled() {
                        ctx.probe_span(
                            s,
                            SpanEvent::BodyComplete {
                                path: job.path.clone(),
                            },
                        );
                    }
                    self.schedule_cpu(
                        ctx,
                        CpuOp::Proc { job, resp },
                        self.config.response_proc_time,
                    );
                }
                let outstanding = self
                    .conns
                    .get(&s)
                    .map(|c| !c.sent.is_empty())
                    .unwrap_or(false);
                if outstanding {
                    // Early close with requests unanswered: retry on a
                    // fresh connection.
                    ctx.shutdown_write(s);
                    self.recover_outstanding(ctx, s);
                } else {
                    ctx.shutdown_write(s);
                    if let Some(conn) = self.conns.get_mut(&s) {
                        conn.finished = true;
                    }
                    self.pump(ctx);
                }
                self.maybe_finish(ctx);
            }
            AppEvent::Reset(s) => {
                self.stats.resets += 1;
                if self.config.reset_backoff > netsim::SimDuration::ZERO && !self.backoff_armed {
                    self.backoff_armed = true;
                    ctx.set_timer(BACKOFF_TOKEN, self.config.reset_backoff);
                }
                if self.mux_sock() == Some(s) {
                    self.mux_recover(ctx);
                } else {
                    self.recover_outstanding(ctx, s);
                }
            }
            AppEvent::Closed(s) if self.mux_sock() == Some(s) => {
                if self.mux_outstanding() {
                    self.mux_recover(ctx);
                } else {
                    self.mux = None;
                    self.pump(ctx);
                }
            }
            AppEvent::Closed(s) => {
                let had_outstanding = self
                    .conns
                    .get(&s)
                    .map(|c| !c.sent.is_empty())
                    .unwrap_or(false);
                if had_outstanding {
                    self.recover_outstanding(ctx, s);
                } else {
                    self.conns.remove(&s);
                    if self.main_conn == Some(s) {
                        self.main_conn = None;
                    }
                    self.pump(ctx);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn html_path_detection() {
        assert!(is_html_path("/index.html"));
        assert!(is_html_path("/docs/page.htm"));
        assert!(is_html_path("/"));
        assert!(!is_html_path("/images/logo.gif"));
        assert!(!is_html_path("/data.bin"));
    }

    #[test]
    fn image_source_extraction() {
        let html = br#"<body><img src="/a.gif"><IMG SRC="/b.gif"></body>"#;
        assert_eq!(image_sources(html), vec!["/a.gif", "/b.gif"]);
    }
}
