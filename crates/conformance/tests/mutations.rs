//! Mutation tests: every [`InvariantKind`] is demonstrated by a
//! synthetic trace that deliberately breaks it — and nothing else fires
//! on the clean baseline exchange. These are the proof that each
//! invariant has teeth; the proof they don't fire spuriously is the
//! matrix gate in `httpipe-core/tests/conformance_gate.rs`.

use bytes::Bytes;
use conformance::{check_trace, CheckConfig, InvariantKind, Report};
use netsim::trace::{DropRecord, TraceRecord};
use netsim::{HostId, SackBlocks, Segment, SimTime, SockAddr, TcpFlags};

const WIN: usize = 65535;
const REQ: &[u8] = b"GET / HTTP/1.1\r\nHost: example.org\r\n\r\n";
const RESP: &[u8] = b"HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nhello";

fn client() -> SockAddr {
    SockAddr::new(HostId(0), 1000)
}

fn server() -> SockAddr {
    SockAddr::new(HostId(1), 80)
}

fn t(us: u64) -> SimTime {
    SimTime::from_nanos(us * 1_000)
}

fn fl(syn: bool, ack: bool, fin: bool, rst: bool) -> TcpFlags {
    TcpFlags {
        syn,
        ack,
        fin,
        rst,
        psh: false,
    }
}

fn seg(c2s: bool, seq: u64, ack: u64, flags: TcpFlags, payload: &[u8], window: usize) -> Segment {
    let (src, dst) = if c2s {
        (client(), server())
    } else {
        (server(), client())
    };
    Segment {
        src,
        dst,
        seq,
        ack,
        flags,
        window,
        sack: SackBlocks::NONE,
        payload: Bytes::from(payload.to_vec()),
    }
}

fn rec(sent_us: u64, recv_us: u64, segment: Segment) -> TraceRecord {
    let physical_bytes = segment.wire_len();
    TraceRecord {
        sent: t(sent_us),
        received: t(recv_us),
        segment,
        physical_bytes,
    }
}

/// SYN, SYN-ACK, ACK with ISS 0 on both sides (like the simulated TCB).
fn handshake() -> Vec<TraceRecord> {
    vec![
        rec(
            0,
            1000,
            seg(true, 0, 0, fl(true, false, false, false), &[], WIN),
        ),
        rec(
            1000,
            2000,
            seg(false, 0, 1, fl(true, true, false, false), &[], WIN),
        ),
        rec(
            2000,
            3000,
            seg(true, 1, 1, fl(false, true, false, false), &[], WIN),
        ),
    ]
}

/// A complete clean exchange: handshake, one request, one response,
/// orderly FIN close in both directions.
fn baseline() -> Vec<TraceRecord> {
    let r = REQ.len() as u64;
    let p = RESP.len() as u64;
    let mut v = handshake();
    // Request, acked by the response within the delayed-ACK deadline.
    v.push(rec(
        2500,
        3500,
        seg(true, 1, 1, fl(false, true, false, false), REQ, WIN),
    ));
    v.push(rec(
        4000,
        5000,
        seg(false, 1, 1 + r, fl(false, true, false, false), RESP, WIN),
    ));
    // Client acks the response, then closes.
    v.push(rec(
        5500,
        6500,
        seg(true, 1 + r, 1 + p, fl(false, true, false, false), &[], WIN),
    ));
    v.push(rec(
        6500,
        7500,
        seg(true, 1 + r, 1 + p, fl(false, true, true, false), &[], WIN),
    ));
    // Server acks the FIN and closes its side; client's final ack.
    v.push(rec(
        8000,
        9000,
        seg(false, 1 + p, 2 + r, fl(false, true, true, false), &[], WIN),
    ));
    v.push(rec(
        9000,
        10000,
        seg(true, 2 + r, 2 + p, fl(false, true, false, false), &[], WIN),
    ));
    v
}

fn check(recs: &[TraceRecord]) -> Report {
    check_trace(recs, &[], &CheckConfig::default())
}

fn check_tcp(recs: &[TraceRecord]) -> Report {
    let cfg = CheckConfig {
        http: false,
        ..CheckConfig::default()
    };
    check_trace(recs, &[], &cfg)
}

#[track_caller]
fn assert_fires(report: &Report, kind: InvariantKind) {
    assert!(
        report.has(kind),
        "expected a {kind} violation, got: {:?}",
        report.violations.iter().map(|v| v.kind).collect::<Vec<_>>()
    );
}

#[test]
fn clean_baseline_has_no_violations() {
    let report = check(&baseline());
    assert!(
        report.is_clean(),
        "baseline violations:\n{:#?}",
        report.violations
    );
    assert_eq!(report.connections, 1);
    assert_eq!(report.http_requests, 1);
}

#[test]
fn every_invariant_kind_is_enumerated() {
    assert_eq!(InvariantKind::ALL.len(), 34);
}

#[test]
fn mutation_syn_first() {
    // A connection whose opening segment is plain data, no SYN anywhere.
    let recs = vec![rec(
        0,
        1000,
        seg(true, 1, 1, fl(false, true, false, false), b"hi", WIN),
    )];
    assert_fires(&check_tcp(&recs), InvariantKind::SynFirst);
}

#[test]
fn mutation_handshake_ordering() {
    // The SYN is lost on the wire (a drop, not an arrival), yet the
    // server answers with a SYN-ACK it cannot have solicited.
    let drops = vec![DropRecord {
        at: t(0),
        segment: seg(true, 0, 0, fl(true, false, false, false), &[], WIN),
        reason: netsim::impair::DropReason::Loss,
    }];
    let recs = vec![rec(
        1000,
        2000,
        seg(false, 0, 1, fl(true, true, false, false), &[], WIN),
    )];
    let cfg = CheckConfig {
        http: false,
        ..CheckConfig::default()
    };
    let report = check_trace(&recs, &drops, &cfg);
    assert_fires(&report, InvariantKind::HandshakeOrdering);
}

#[test]
fn mutation_synack_acks_iss() {
    let mut recs = handshake();
    // SYN-ACK acknowledges 5; the peer's ISS is 0, so it must ack 1.
    recs[1].segment.ack = 5;
    assert_fires(&check_tcp(&recs), InvariantKind::SynAckAcksIss);
}

#[test]
fn mutation_seq_contiguous() {
    let mut recs = handshake();
    // Request data starts at seq 10: a gap above snd_max = 1.
    recs.push(rec(
        2500,
        3500,
        seg(true, 10, 1, fl(false, true, false, false), REQ, WIN),
    ));
    recs.push(rec(
        4000,
        5000,
        seg(false, 1, 1, fl(false, true, false, false), &[], WIN),
    ));
    assert_fires(&check_tcp(&recs), InvariantKind::SeqContiguous);
}

#[test]
fn mutation_ack_monotonic() {
    let mut recs = handshake();
    // After acking 1, the client's next ack goes back to 0.
    recs.push(rec(
        3000,
        4000,
        seg(true, 1, 0, fl(false, true, false, false), &[], WIN),
    ));
    assert_fires(&check_tcp(&recs), InvariantKind::AckMonotonic);
}

#[test]
fn mutation_ack_no_unsent_data() {
    let mut recs = handshake();
    // The handshake ack acknowledges 100 bytes the server never sent.
    recs[2].segment.ack = 100;
    assert_fires(&check_tcp(&recs), InvariantKind::AckNoUnsentData);
}

#[test]
fn mutation_mss_respect() {
    let mut recs = handshake();
    let jumbo = vec![0u8; 2000]; // default MSS is 1460
    recs.push(rec(
        2500,
        3500,
        seg(true, 1, 1, fl(false, true, false, false), &jumbo, WIN),
    ));
    recs.push(rec(
        4000,
        5000,
        seg(false, 1, 2001, fl(false, true, false, false), &[], WIN),
    ));
    assert_fires(&check_tcp(&recs), InvariantKind::MssRespect);
}

#[test]
fn mutation_window_respect() {
    let mut recs = handshake();
    // The server advertises a 10-byte window; the request overruns it.
    recs[1].segment.window = 10;
    recs.push(rec(
        2500,
        3500,
        seg(true, 1, 1, fl(false, true, false, false), REQ, WIN),
    ));
    recs.push(rec(
        4000,
        5000,
        seg(
            false,
            1,
            1 + REQ.len() as u64,
            fl(false, true, false, false),
            &[],
            WIN,
        ),
    ));
    assert_fires(&check_tcp(&recs), InvariantKind::WindowRespect);
}

#[test]
fn mutation_window_edge_no_shrink() {
    let r = REQ.len() as u64;
    let mut recs = handshake();
    recs.push(rec(
        2500,
        3500,
        seg(true, 1, 1, fl(false, true, false, false), REQ, WIN),
    ));
    // The server's ack pulls its advertised right edge back from
    // 1 + 65535 to (1 + r) + 100.
    recs.push(rec(
        4000,
        5000,
        seg(false, 1, 1 + r, fl(false, true, false, false), &[], 100),
    ));
    assert_fires(&check_tcp(&recs), InvariantKind::WindowEdgeNoShrink);
}

#[test]
fn mutation_cwnd_respect() {
    // Four full segments burst into a cwnd bound of
    // initial (2 MSS) + one MSS per advancing ack (the SYN-ACK) = 4380.
    let mss = 1460usize;
    let payload = vec![0u8; mss];
    let mut recs = handshake();
    for i in 0..4u64 {
        recs.push(rec(
            2500 + i * 100,
            3500 + i * 100,
            seg(
                true,
                1 + i * mss as u64,
                1,
                fl(false, true, false, false),
                &payload,
                WIN,
            ),
        ));
    }
    // Acks keep the delayed-ACK invariants satisfied.
    recs.push(rec(
        3650,
        4650,
        seg(
            false,
            1,
            1 + 2 * mss as u64,
            fl(false, true, false, false),
            &[],
            WIN,
        ),
    ));
    recs.push(rec(
        4500,
        5500,
        seg(
            false,
            1,
            1 + 4 * mss as u64,
            fl(false, true, false, false),
            &[],
            WIN,
        ),
    ));
    let report = check_tcp(&recs);
    assert_fires(&report, InvariantKind::CwndRespect);
    // Only the fourth segment oversteps the bound.
    assert_eq!(
        report
            .violations
            .iter()
            .filter(|v| v.kind == InvariantKind::CwndRespect)
            .count(),
        1
    );
}

#[test]
fn mutation_delayed_ack_deadline() {
    let mut recs = handshake();
    // The request arrives and the server never acknowledges it.
    recs.push(rec(
        2500,
        3500,
        seg(true, 1, 1, fl(false, true, false, false), REQ, WIN),
    ));
    assert_fires(&check_tcp(&recs), InvariantKind::DelayedAckDeadline);
}

#[test]
fn mutation_delayed_ack_force() {
    // Three deliveries pass without any ack departing; the eventual ack
    // still meets every 200 ms deadline, so only the force rule fires.
    let mut recs = handshake();
    for i in 0..3u64 {
        recs.push(rec(
            2500 + i * 100,
            3500 + i * 100,
            seg(
                true,
                1 + i * 100,
                1,
                fl(false, true, false, false),
                &[0u8; 100],
                WIN,
            ),
        ));
    }
    recs.push(rec(
        10_000,
        11_000,
        seg(false, 1, 301, fl(false, true, false, false), &[], WIN),
    ));
    let report = check_tcp(&recs);
    assert_fires(&report, InvariantKind::DelayedAckForce);
    assert!(!report.has(InvariantKind::DelayedAckDeadline));
}

#[test]
fn mutation_nagle_hold() {
    // With Nagle enabled on the client, a second small segment departs
    // while the first is still unacknowledged.
    let r = REQ.len() as u64;
    let mut recs = handshake();
    recs.push(rec(
        2500,
        3500,
        seg(true, 1, 1, fl(false, true, false, false), REQ, WIN),
    ));
    recs.push(rec(
        2600,
        3600,
        seg(
            true,
            1 + r,
            1,
            fl(false, true, false, false),
            b"more bytes",
            WIN,
        ),
    ));
    recs.push(rec(
        4000,
        5000,
        seg(false, 1, 11 + r, fl(false, true, false, false), &[], WIN),
    ));
    let cfg = CheckConfig {
        client_nodelay: false,
        http: false,
        ..CheckConfig::default()
    };
    let report = check_trace(&recs, &[], &cfg);
    assert_fires(&report, InvariantKind::NagleHold);
    // The same trace is legal with TCP_NODELAY set.
    assert!(check_tcp(&recs).is_clean());
}

#[test]
fn mutation_data_after_fin() {
    let r = REQ.len() as u64;
    let mut recs = handshake();
    recs.push(rec(
        2500,
        3500,
        seg(true, 1, 1, fl(false, true, false, false), REQ, WIN),
    ));
    recs.push(rec(
        4000,
        5000,
        seg(false, 1, 1 + r, fl(false, true, false, false), &[], WIN),
    ));
    recs.push(rec(
        5000,
        6000,
        seg(true, 1 + r, 1, fl(false, true, true, false), &[], WIN),
    ));
    // New sequence space beyond the FIN.
    recs.push(rec(
        5500,
        6500,
        seg(
            true,
            2 + r,
            1,
            fl(false, true, false, false),
            b"late data",
            WIN,
        ),
    ));
    assert_fires(&check_tcp(&recs), InvariantKind::DataAfterFin);
}

#[test]
fn mutation_fin_seq_stable() {
    let r = REQ.len() as u64;
    let mut recs = handshake();
    recs.push(rec(
        2500,
        3500,
        seg(true, 1, 1, fl(false, true, false, false), REQ, WIN),
    ));
    recs.push(rec(
        4000,
        5000,
        seg(false, 1, 1 + r, fl(false, true, false, false), &[], WIN),
    ));
    recs.push(rec(
        5000,
        6000,
        seg(true, 1 + r, 1, fl(false, true, true, false), &[], WIN),
    ));
    // A FIN "retransmission" (a full RTO later, so the rexmit itself is
    // justified) at a different sequence number.
    recs.push(rec(
        600_000,
        601_000,
        seg(true, r - 4, 1, fl(false, true, true, false), &[], WIN),
    ));
    assert_fires(&check_tcp(&recs), InvariantKind::FinSeqStable);
}

#[test]
fn mutation_rst_with_payload() {
    let mut recs = handshake();
    recs.push(rec(
        3000,
        4000,
        seg(true, 1, 0, fl(false, false, false, true), b"abort", WIN),
    ));
    assert_fires(&check_tcp(&recs), InvariantKind::RstWithPayload);
}

#[test]
fn mutation_rst_not_first() {
    let recs = vec![rec(
        0,
        1000,
        seg(true, 0, 0, fl(false, false, false, true), &[], 0),
    )];
    assert_fires(&check_tcp(&recs), InvariantKind::RstNotFirst);
}

#[test]
fn mutation_silence_after_rst_sent() {
    let mut recs = handshake();
    recs.push(rec(
        3000,
        4000,
        seg(true, 1, 0, fl(false, false, false, true), &[], 0),
    ));
    // Data from the endpoint that just reset the connection.
    recs.push(rec(
        4000,
        5000,
        seg(true, 1, 1, fl(false, true, false, false), b"zombie", WIN),
    ));
    assert_fires(&check_tcp(&recs), InvariantKind::SilenceAfterRstSent);
}

#[test]
fn mutation_silence_after_rst_recvd() {
    let mut recs = handshake();
    recs.push(rec(
        3000,
        4000,
        seg(false, 1, 0, fl(false, false, false, true), &[], 0),
    ));
    // The client keeps talking after the server's RST arrived at 4 ms.
    recs.push(rec(
        5000,
        6000,
        seg(true, 1, 1, fl(false, true, false, false), b"zombie", WIN),
    ));
    assert_fires(&check_tcp(&recs), InvariantKind::SilenceAfterRstRecvd);
}

#[test]
fn mutation_rexmit_justified() {
    let r = REQ.len() as u64;
    let mut recs = handshake();
    recs.push(rec(
        2500,
        3500,
        seg(true, 1, 1, fl(false, true, false, false), REQ, WIN),
    ));
    recs.push(rec(
        5000,
        6000,
        seg(false, 1, 1 + r, fl(false, true, false, false), &[], WIN),
    ));
    // Identical copy 7.5 ms after the original: far below the 500 ms
    // minimum RTO, and with zero duplicate acks.
    recs.push(rec(
        10_000,
        11_000,
        seg(true, 1, 1, fl(false, true, false, false), REQ, WIN),
    ));
    assert_fires(&check_tcp(&recs), InvariantKind::RexmitJustified);
}

#[test]
fn mutation_http_request_parse() {
    let garbage = b"\x01\x02 this is not HTTP\r\n\r\n";
    let mut recs = handshake();
    recs.push(rec(
        2500,
        3500,
        seg(true, 1, 1, fl(false, true, false, false), garbage, WIN),
    ));
    recs.push(rec(
        4000,
        5000,
        seg(
            false,
            1,
            1 + garbage.len() as u64,
            fl(false, true, false, false),
            &[],
            WIN,
        ),
    ));
    assert_fires(&check(&recs), InvariantKind::HttpRequestParse);
}

#[test]
fn mutation_http_response_parse() {
    let r = REQ.len() as u64;
    let garbage = b"\x01\x02 this is not HTTP either\r\n\r\n";
    let mut recs = handshake();
    recs.push(rec(
        2500,
        3500,
        seg(true, 1, 1, fl(false, true, false, false), REQ, WIN),
    ));
    recs.push(rec(
        4000,
        5000,
        seg(false, 1, 1 + r, fl(false, true, false, false), garbage, WIN),
    ));
    recs.push(rec(
        5500,
        6500,
        seg(
            true,
            1 + r,
            1 + garbage.len() as u64,
            fl(false, true, false, false),
            &[],
            WIN,
        ),
    ));
    assert_fires(&check(&recs), InvariantKind::HttpResponseParse);
}

#[test]
fn mutation_response_before_request() {
    let r = REQ.len() as u64;
    let p = RESP.len() as u64;
    let mut recs = handshake();
    // The request departs at 2.5 ms and completes arrival at 3.5 ms —
    // but the server's response already departed at 3.0 ms.
    recs.push(rec(
        2500,
        3500,
        seg(true, 1, 1, fl(false, true, false, false), REQ, WIN),
    ));
    recs.push(rec(
        3000,
        4000,
        seg(false, 1, 1, fl(false, true, false, false), RESP, WIN),
    ));
    recs.push(rec(
        5000,
        6000,
        seg(false, 1 + p, 1 + r, fl(false, true, false, false), &[], WIN),
    ));
    recs.push(rec(
        5500,
        6500,
        seg(true, 1 + r, 1 + p, fl(false, true, false, false), &[], WIN),
    ));
    assert_fires(&check(&recs), InvariantKind::ResponseBeforeRequest);
}

#[test]
fn mutation_pipeline_order() {
    let r = REQ.len() as u64;
    let p = RESP.len() as u64;
    let second = b"HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nworld";
    let mut recs = handshake();
    recs.push(rec(
        2500,
        3500,
        seg(true, 1, 1, fl(false, true, false, false), REQ, WIN),
    ));
    recs.push(rec(
        4000,
        5000,
        seg(false, 1, 1 + r, fl(false, true, false, false), RESP, WIN),
    ));
    // A second response to a connection that only ever saw one request.
    recs.push(rec(
        4100,
        5100,
        seg(
            false,
            1 + p,
            1 + r,
            fl(false, true, false, false),
            second,
            WIN,
        ),
    ));
    recs.push(rec(
        5500,
        6500,
        seg(
            true,
            1 + r,
            1 + p + second.len() as u64,
            fl(false, true, false, false),
            &[],
            WIN,
        ),
    ));
    assert_fires(&check(&recs), InvariantKind::PipelineOrder);
}

#[test]
fn mutation_stream_leftover() {
    let r = REQ.len() as u64;
    let mut recs = handshake();
    recs.push(rec(
        2500,
        3500,
        seg(true, 1, 1, fl(false, true, false, false), REQ, WIN),
    ));
    // A truncated second request, then a clean FIN: unparsed bytes left.
    recs.push(rec(
        2600,
        3600,
        seg(
            true,
            1 + r,
            1,
            fl(false, true, false, false),
            b"GET / HT",
            WIN,
        ),
    ));
    recs.push(rec(
        5000,
        6000,
        seg(true, 9 + r, 1, fl(false, true, true, false), &[], WIN),
    ));
    recs.push(rec(
        6000,
        7000,
        seg(false, 1, 10 + r, fl(false, true, false, false), &[], WIN),
    ));
    assert_fires(&check(&recs), InvariantKind::StreamLeftover);
}

#[test]
fn mutation_connection_close_respected() {
    let close_resp = b"HTTP/1.1 200 OK\r\nConnection: close\r\nContent-Length: 5\r\n\r\nhello";
    let r = REQ.len() as u64;
    let p = close_resp.len() as u64;
    let mut recs = handshake();
    recs.push(rec(
        2500,
        3500,
        seg(true, 1, 1, fl(false, true, false, false), REQ, WIN),
    ));
    recs.push(rec(
        4000,
        5000,
        seg(
            false,
            1,
            1 + r,
            fl(false, true, false, false),
            close_resp,
            WIN,
        ),
    ));
    // The close response fully arrived at 5 ms; a second request departs
    // at 6 ms anyway.
    recs.push(rec(
        6000,
        7000,
        seg(true, 1 + r, 1 + p, fl(false, true, false, false), REQ, WIN),
    ));
    recs.push(rec(
        7100,
        8100,
        seg(
            false,
            1 + p,
            1 + 2 * r,
            fl(false, true, false, false),
            &[],
            WIN,
        ),
    ));
    assert_fires(&check(&recs), InvariantKind::ConnectionCloseRespected);
}

// --- Multiplexed (httpmux) invariants -----------------------------------
//
// The same synthetic-trace machinery, with frame-encoded payloads: the
// client segment carries the preface plus its frames, the server segment
// carries its frames, and the TCP envelope mirrors `baseline()` exactly.

use httpmux::{
    Frame, FramePayload, FLAG_END_STREAM, PREFACE, SETTING_ENABLE_PUSH, SETTING_INITIAL_WINDOW,
};

fn fr(stream: u32, flags: u8, payload: FramePayload) -> Vec<u8> {
    Frame {
        stream,
        flags,
        payload,
    }
    .encode()
}

fn headers(fields: &[(&str, &str)]) -> FramePayload {
    FramePayload::Headers(
        fields
            .iter()
            .map(|(n, v)| (n.to_string(), v.to_string()))
            .collect(),
    )
}

/// Client bytes: preface + SETTINGS + the given frames.
fn mux_client(frames: &[Vec<u8>]) -> Vec<u8> {
    let mut v = PREFACE.to_vec();
    v.extend(fr(
        0,
        0,
        FramePayload::Settings(vec![
            (SETTING_ENABLE_PUSH, 1),
            (SETTING_INITIAL_WINDOW, 65_535),
        ]),
    ));
    for f in frames {
        v.extend_from_slice(f);
    }
    v
}

/// Server bytes: SETTINGS + the given frames.
fn mux_server(frames: &[Vec<u8>]) -> Vec<u8> {
    let mut v = fr(
        0,
        0,
        FramePayload::Settings(vec![(SETTING_INITIAL_WINDOW, 65_535)]),
    );
    for f in frames {
        v.extend_from_slice(f);
    }
    v
}

/// A clean TCP envelope around one client payload and one server payload:
/// `baseline()` with the HTTP messages swapped for frame bytes.
fn mux_trace(client_bytes: &[u8], server_bytes: &[u8]) -> Vec<TraceRecord> {
    let r = client_bytes.len() as u64;
    let p = server_bytes.len() as u64;
    let mut v = handshake();
    v.push(rec(
        2500,
        3500,
        seg(true, 1, 1, fl(false, true, false, false), client_bytes, WIN),
    ));
    v.push(rec(
        4000,
        5000,
        seg(
            false,
            1,
            1 + r,
            fl(false, true, false, false),
            server_bytes,
            WIN,
        ),
    ));
    v.push(rec(
        5500,
        6500,
        seg(true, 1 + r, 1 + p, fl(false, true, false, false), &[], WIN),
    ));
    v.push(rec(
        6500,
        7500,
        seg(true, 1 + r, 1 + p, fl(false, true, true, false), &[], WIN),
    ));
    v.push(rec(
        8000,
        9000,
        seg(false, 1 + p, 2 + r, fl(false, true, true, false), &[], WIN),
    ));
    v.push(rec(
        9000,
        10000,
        seg(true, 2 + r, 2 + p, fl(false, true, false, false), &[], WIN),
    ));
    v
}

#[test]
fn clean_mux_exchange_has_no_violations() {
    let client = mux_client(&[fr(
        1,
        FLAG_END_STREAM,
        headers(&[(":method", "GET"), (":path", "/")]),
    )]);
    let server = mux_server(&[
        fr(1, 0, headers(&[(":status", "200")])),
        fr(
            1,
            FLAG_END_STREAM,
            FramePayload::Data(b"hello".to_vec().into()),
        ),
    ]);
    let report = check(&mux_trace(&client, &server));
    assert!(
        report.is_clean(),
        "clean mux violations:\n{:#?}",
        report.violations
    );
    assert_eq!(report.http_requests, 1, "HEADERS counted as a request");
}

#[test]
fn mutation_mux_frame_parse() {
    // Nine 0xFF bytes after the preface: an impossible length prefix.
    let mut client = PREFACE.to_vec();
    client.extend_from_slice(&[0xFF; 9]);
    let server = mux_server(&[]);
    assert_fires(
        &check(&mux_trace(&client, &server)),
        InvariantKind::MuxFrameParse,
    );
}

#[test]
fn mutation_mux_stream_id_monotonic() {
    // Client opens stream 3, then stream 1: ids must increase.
    let client = mux_client(&[
        fr(3, FLAG_END_STREAM, headers(&[(":path", "/a")])),
        fr(1, FLAG_END_STREAM, headers(&[(":path", "/b")])),
    ]);
    let server = mux_server(&[]);
    assert_fires(
        &check(&mux_trace(&client, &server)),
        InvariantKind::MuxStreamIdMonotonic,
    );
}

#[test]
fn mutation_mux_even_stream_from_client() {
    let client = mux_client(&[fr(2, FLAG_END_STREAM, headers(&[(":path", "/a")]))]);
    let server = mux_server(&[]);
    assert_fires(
        &check(&mux_trace(&client, &server)),
        InvariantKind::MuxStreamIdMonotonic,
    );
}

#[test]
fn mutation_mux_window_non_negative() {
    // The client's SETTINGS allow only 10 bytes per stream; the server
    // sends a 100-byte DATA frame regardless.
    let mut client = PREFACE.to_vec();
    client.extend(fr(
        0,
        0,
        FramePayload::Settings(vec![(SETTING_INITIAL_WINDOW, 10)]),
    ));
    client.extend(fr(1, FLAG_END_STREAM, headers(&[(":path", "/")])));
    let server = mux_server(&[
        fr(1, 0, headers(&[(":status", "200")])),
        fr(
            1,
            FLAG_END_STREAM,
            FramePayload::Data(vec![0u8; 100].into()),
        ),
    ]);
    assert_fires(
        &check(&mux_trace(&client, &server)),
        InvariantKind::MuxWindowNonNegative,
    );
}

#[test]
fn mutation_mux_data_after_end_stream() {
    let client = mux_client(&[fr(1, FLAG_END_STREAM, headers(&[(":path", "/")]))]);
    let server = mux_server(&[
        fr(1, 0, headers(&[(":status", "200")])),
        fr(
            1,
            FLAG_END_STREAM,
            FramePayload::Data(b"hi".to_vec().into()),
        ),
        fr(
            1,
            FLAG_END_STREAM,
            FramePayload::Data(b"more".to_vec().into()),
        ),
    ]);
    assert_fires(
        &check(&mux_trace(&client, &server)),
        InvariantKind::MuxDataAfterEndStream,
    );
}

#[test]
fn mutation_mux_push_promise_invalid() {
    // PUSH_PROMISE tied to stream 5, which the client never opened.
    let client = mux_client(&[fr(1, FLAG_END_STREAM, headers(&[(":path", "/")]))]);
    let server = mux_server(&[
        fr(
            5,
            0,
            FramePayload::PushPromise {
                promised: 2,
                fields: vec![(":path".to_string(), "/a.gif".to_string())],
            },
        ),
        fr(1, FLAG_END_STREAM, headers(&[(":status", "200")])),
    ]);
    assert_fires(
        &check(&mux_trace(&client, &server)),
        InvariantKind::MuxPushPromiseInvalid,
    );
}

#[test]
fn mutation_mux_push_promise_from_client() {
    let client = mux_client(&[
        fr(1, FLAG_END_STREAM, headers(&[(":path", "/")])),
        fr(
            1,
            0,
            FramePayload::PushPromise {
                promised: 2,
                fields: vec![(":path".to_string(), "/a.gif".to_string())],
            },
        ),
    ]);
    let server = mux_server(&[]);
    assert_fires(
        &check(&mux_trace(&client, &server)),
        InvariantKind::MuxPushPromiseInvalid,
    );
}

// ---------------------------------------------------------------------
// Congestion-control invariants (NewReno / SACK / CUBIC)
// ---------------------------------------------------------------------

use netsim::impair::DropReason;
use netsim::{CcVariant, TcpConfig};

const MSS: u64 = 1460;

fn check_cc(recs: &[TraceRecord], drops: &[DropRecord], cc: CcVariant) -> Report {
    let cfg = CheckConfig {
        http: false,
        tcp: TcpConfig {
            cc,
            ..TcpConfig::default()
        },
        ..CheckConfig::default()
    };
    check_trace(recs, drops, &cfg)
}

fn drop_at(us: u64, segment: Segment) -> DropRecord {
    DropRecord {
        at: t(us),
        segment,
        reason: DropReason::Loss,
    }
}

fn sack_of(blocks: &[(u64, u64)]) -> SackBlocks {
    let mut sb = SackBlocks::NONE;
    for &(s, e) in blocks {
        assert!(sb.push(s, e), "more than four SACK blocks in a test");
    }
    sb
}

/// The shared prologue of the NewReno partial-ACK traces: handshake, two
/// acked warm-up segments (growing the checker's cwnd cap to 5 MSS),
/// then a five-segment flight losing the 1st and 3rd, three duplicate
/// ACKs, the fast retransmit, and the server's partial ACK covering only
/// up to the second hole. Returns the records and the hole's sequence.
fn newreno_recovery_prologue(drops: &mut Vec<DropRecord>) -> (Vec<TraceRecord>, u64) {
    let data = vec![0u8; MSS as usize];
    let f = fl(false, true, false, false);
    let mut recs = handshake();
    // Warm-up: two segments, each acknowledged (cwnd cap -> 5 MSS).
    recs.push(rec(2500, 3500, seg(true, 1, 1, f, &data, WIN)));
    recs.push(rec(4000, 5000, seg(false, 1, 1 + MSS, f, &[], WIN)));
    recs.push(rec(5500, 6500, seg(true, 1 + MSS, 1, f, &data, WIN)));
    recs.push(rec(7000, 8000, seg(false, 1, 1 + 2 * MSS, f, &[], WIN)));
    let base = 1 + 2 * MSS;
    // Five-segment flight: A and C are lost on the wire.
    drops.push(drop_at(8500, seg(true, base, 1, f, &data, WIN)));
    recs.push(rec(8600, 9600, seg(true, base + MSS, 1, f, &data, WIN)));
    drops.push(drop_at(8700, seg(true, base + 2 * MSS, 1, f, &data, WIN)));
    recs.push(rec(8800, 9800, seg(true, base + 3 * MSS, 1, f, &data, WIN)));
    recs.push(rec(8900, 9900, seg(true, base + 4 * MSS, 1, f, &data, WIN)));
    // Three duplicate ACKs open fast recovery.
    recs.push(rec(9700, 10_700, seg(false, 1, base, f, &[], WIN)));
    recs.push(rec(9900, 10_900, seg(false, 1, base, f, &[], WIN)));
    recs.push(rec(10_000, 11_000, seg(false, 1, base, f, &[], WIN)));
    // Fast retransmit of A; the server then acks through B only: a
    // partial ACK exposing the second hole at C.
    recs.push(rec(11_100, 12_100, seg(true, base, 1, f, &data, WIN)));
    recs.push(rec(
        12_200,
        13_200,
        seg(false, 1, base + 2 * MSS, f, &[], WIN),
    ));
    (recs, base + 2 * MSS)
}

#[test]
fn mutation_newreno_partial_ack() {
    // The sender ignores the partial ACK and only fills the hole after a
    // full RTO-scale stall — the slow-start re-entry NewReno forbids.
    let data = vec![0u8; MSS as usize];
    let f = fl(false, true, false, false);
    let mut drops = Vec::new();
    let (mut recs, hole) = newreno_recovery_prologue(&mut drops);
    recs.push(rec(613_200, 614_200, seg(true, hole, 1, f, &data, WIN)));
    recs.push(rec(
        614_300,
        615_300,
        seg(false, 1, hole + 3 * MSS, f, &[], WIN),
    ));
    let report = check_cc(&recs, &drops, CcVariant::NewReno);
    assert_fires(&report, InvariantKind::NewRenoPartialAck);
}

#[test]
fn newreno_prompt_partial_ack_fill_is_clean() {
    // The conformant counterpart: the hole is filled promptly (RFC 6582)
    // — and the partial-ACK retransmission needs neither an RTO wait nor
    // three fresh duplicate ACKs to be justified.
    let data = vec![0u8; MSS as usize];
    let f = fl(false, true, false, false);
    let mut drops = Vec::new();
    let (mut recs, hole) = newreno_recovery_prologue(&mut drops);
    recs.push(rec(13_300, 14_300, seg(true, hole, 1, f, &data, WIN)));
    recs.push(rec(
        14_400,
        15_400,
        seg(false, 1, hole + 3 * MSS, f, &[], WIN),
    ));
    let report = check_cc(&recs, &drops, CcVariant::NewReno);
    assert!(
        report.is_clean(),
        "prompt hole fill violations:\n{:#?}",
        report.violations
    );
}

#[test]
fn mutation_sack_rexmit_sacked() {
    // The peer SACKed C, yet the sender retransmits it anyway.
    let data = vec![0u8; MSS as usize];
    let f = fl(false, true, false, false);
    let mut recs = handshake();
    // A arrives, B is lost, C arrives out of order.
    recs.push(rec(2500, 3500, seg(true, 1, 1, f, &data, WIN)));
    let drops = vec![drop_at(2600, seg(true, 1 + MSS, 1, f, &data, WIN))];
    recs.push(rec(2700, 3700, seg(true, 1 + 2 * MSS, 1, f, &data, WIN)));
    // Cumulative ACK of A, then a duplicate ACK carrying the SACK block
    // for C.
    recs.push(rec(4000, 5000, seg(false, 1, 1 + MSS, f, &[], WIN)));
    let mut dup = seg(false, 1, 1 + MSS, f, &[], WIN);
    dup.sack = sack_of(&[(1 + 2 * MSS, 1 + 3 * MSS)]);
    recs.push(rec(4100, 5100, dup));
    // A full RTO later the sender retransmits the SACKed C instead of
    // (or in addition to) the hole at B.
    recs.push(rec(
        600_000,
        601_000,
        seg(true, 1 + 2 * MSS, 1, f, &data, WIN),
    ));
    let report = check_cc(&recs, &drops, CcVariant::Sack);
    assert_fires(&report, InvariantKind::SackRexmitSacked);
}

#[test]
fn sack_hole_rexmit_is_clean() {
    // Retransmitting the un-SACKed hole B is conformant.
    let data = vec![0u8; MSS as usize];
    let f = fl(false, true, false, false);
    let mut recs = handshake();
    recs.push(rec(2500, 3500, seg(true, 1, 1, f, &data, WIN)));
    let drops = vec![drop_at(2600, seg(true, 1 + MSS, 1, f, &data, WIN))];
    recs.push(rec(2700, 3700, seg(true, 1 + 2 * MSS, 1, f, &data, WIN)));
    recs.push(rec(4000, 5000, seg(false, 1, 1 + MSS, f, &[], WIN)));
    let mut dup = seg(false, 1, 1 + MSS, f, &[], WIN);
    dup.sack = sack_of(&[(1 + 2 * MSS, 1 + 3 * MSS)]);
    recs.push(rec(4100, 5100, dup));
    recs.push(rec(600_000, 601_000, seg(true, 1 + MSS, 1, f, &data, WIN)));
    recs.push(rec(
        601_100,
        602_100,
        seg(false, 1, 1 + 3 * MSS, f, &[], WIN),
    ));
    let report = check_cc(&recs, &drops, CcVariant::Sack);
    assert!(
        report.is_clean(),
        "hole retransmission violations:\n{:#?}",
        report.violations
    );
}

#[test]
fn mutation_cubic_growth_bound() {
    // Ten acknowledged round trips inflate the slow-start cwnd cap to 13
    // MSS, then a loss with only one segment in flight pins the CUBIC
    // wmax estimate at 2 MSS — so an 8-MSS burst right after recovery is
    // fine by the slow-start bound but far above the cubic window.
    let data = vec![0u8; MSS as usize];
    let f = fl(false, true, false, false);
    let mut recs = handshake();
    for i in 0..10u64 {
        let seq = 1 + i * MSS;
        let at = 2500 + i * 3000;
        recs.push(rec(at, at + 1000, seg(true, seq, 1, f, &data, WIN)));
        recs.push(rec(
            at + 1500,
            at + 2500,
            seg(false, 1, seq + MSS, f, &[], WIN),
        ));
    }
    let lost = 1 + 10 * MSS;
    let drops = vec![drop_at(35_000, seg(true, lost, 1, f, &data, WIN))];
    // RTO-style recovery: the retransmission stamps the congestion
    // epoch with wmax = 2 MSS.
    recs.push(rec(600_000, 601_000, seg(true, lost, 1, f, &data, WIN)));
    recs.push(rec(
        601_500,
        602_500,
        seg(false, 1, lost + MSS, f, &[], WIN),
    ));
    // 8-MSS burst 1 ms into the epoch: the cubic window is still near
    // 0.7 * wmax, so flight must not approach 8 MSS.
    for i in 0..8u64 {
        let seq = lost + MSS + i * MSS;
        recs.push(rec(
            603_000 + i * 50,
            604_000 + i * 50,
            seg(true, seq, 1, f, &data, WIN),
        ));
    }
    recs.push(rec(
        604_500,
        605_500,
        seg(false, 1, lost + 9 * MSS, f, &[], WIN),
    ));
    let report = check_cc(&recs, &drops, CcVariant::Cubic);
    assert_fires(&report, InvariantKind::CubicGrowthBound);
    // The same burst is within the plain slow-start cap: the violation
    // is CUBIC-specific.
    assert!(!report.has(InvariantKind::CwndRespect));
    let reno = check_cc(&recs, &drops, CcVariant::Reno);
    assert!(!reno.has(InvariantKind::CubicGrowthBound));
}

#[test]
fn baseline_is_clean_under_every_cc_variant() {
    for cc in CcVariant::ALL {
        let report = check_cc(&baseline(), &[], cc);
        assert!(
            report.is_clean(),
            "baseline violations under {}:\n{:#?}",
            cc.label(),
            report.violations
        );
    }
}
