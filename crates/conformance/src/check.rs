//! The causal replay engine: groups a trace into connections, replays
//! departures and arrivals in time order, and checks the TCP invariants.
//! HTTP-level checks over the reassembled streams live in [`crate::http`].

use crate::{CheckConfig, InvariantKind, Report, Violation};
use netsim::{CcVariant, DropRecord, Segment, SimTime, SockAddr, TraceRecord};
use std::collections::BTreeMap;

/// Check every connection in a trace against the full invariant set.
///
/// `records` are the arrival-ordered captures from
/// [`netsim::Trace::records`] (requires [`netsim::TraceMode::Full`]);
/// `drops` are the link-dropped packets from
/// [`netsim::Trace::drop_records`] — they still count as departures.
pub fn check_trace(records: &[TraceRecord], drops: &[DropRecord], cfg: &CheckConfig) -> Report {
    let mut conns: BTreeMap<(SockAddr, SockAddr), Conn> = BTreeMap::new();
    for rec in records {
        let key = conn_key(&rec.segment);
        let conn = conns.entry(key).or_default();
        let pkt = conn.intern(rec.sent, &rec.segment);
        conn.arrivals.push((rec.received, pkt));
    }
    for d in drops {
        let key = conn_key(&d.segment);
        conns.entry(key).or_default().intern(d.at, &d.segment);
    }

    let mut report = Report {
        connections: conns.len(),
        ..Report::default()
    };
    for (key, conn) in &conns {
        report.segments += conn.packets.len();
        check_conn(*key, conn, cfg, &mut report);
    }
    report
}

/// Normalized connection key: the endpoint pair, lower address first.
fn conn_key(seg: &Segment) -> (SockAddr, SockAddr) {
    if seg.src <= seg.dst {
        (seg.src, seg.dst)
    } else {
        (seg.dst, seg.src)
    }
}

/// Identity of one emission: (sent-nanos, src, seq, ack, flag bits,
/// window, payload length). Two trace records matching on all of these
/// are network copies of the same packet.
type EmissionKey = (u64, SockAddr, u64, u64, u8, usize, usize);

/// One unique emission. Network duplication delivers the same emission
/// twice; both arrivals point at the same packet.
struct Packet {
    sent: SimTime,
    seg: Segment,
}

#[derive(Default)]
struct Conn {
    packets: Vec<Packet>,
    /// (arrival time, packet index), in trace (arrival) order.
    arrivals: Vec<(SimTime, usize)>,
    /// Dedup map from emission identity to packet index.
    interned: BTreeMap<EmissionKey, usize>,
}

impl Conn {
    /// Fold an observed copy of a segment into its unique emission.
    fn intern(&mut self, sent: SimTime, seg: &Segment) -> usize {
        let f = &seg.flags;
        let flagbits = (f.syn as u8)
            | (f.ack as u8) << 1
            | (f.fin as u8) << 2
            | (f.rst as u8) << 3
            | (f.psh as u8) << 4;
        let key = (
            sent.as_nanos(),
            seg.src,
            seg.seq,
            seg.ack,
            flagbits,
            seg.payload.len(),
            seg.window,
        );
        if let Some(&i) = self.interned.get(&key) {
            return i;
        }
        self.packets.push(Packet {
            sent,
            seg: seg.clone(),
        });
        let i = self.packets.len() - 1;
        self.interned.insert(key, i);
        i
    }
}

/// The replay timeline: arrivals are processed before departures at the
/// same instant, matching the TCB (a segment arriving at `t` is handled
/// before anything the TCB emits at `t`).
#[derive(Clone, Copy)]
enum Event {
    Arrive { at: SimTime, pkt: usize },
    Depart { at: SimTime, pkt: usize },
}

impl Event {
    fn at(&self) -> SimTime {
        match *self {
            Event::Arrive { at, .. } | Event::Depart { at, .. } => at,
        }
    }
    fn rank(&self) -> u8 {
        match self {
            Event::Arrive { .. } => 0,
            Event::Depart { .. } => 1,
        }
    }
}

/// Everything the replay tracks about one endpoint (one direction's
/// sender, the opposite direction's receiver).
struct EndState {
    addr: SockAddr,
    /// --- sender-side ---
    departed_any: bool,
    snd_max: u64,
    /// First FIN's sequence end (the FIN octet is `fin_end - 1`).
    fin_end: Option<u64>,
    sent_rst: bool,
    rst_arrived: Option<SimTime>,
    last_ack_departed: u64,
    last_edge_departed: u64,
    last_syn_tx: Option<SimTime>,
    syn_arrived_since_syn_tx: bool,
    /// Data-bearing transmissions `(start, end, at, payload_len)` in
    /// emission order, for retransmission justification.
    txs: Vec<(u64, u64, SimTime, usize)>,
    /// Fresh payload first-emission ranges `(stream_start, stream_end,
    /// at)` in stream-offset space, for the HTTP timing checks.
    fresh_sent: Vec<(u64, u64, SimTime)>,
    /// ACK-bearing departures `(at, ack)`, for the delayed-ACK checks of
    /// the opposite direction.
    ack_departures: Vec<(SimTime, u64)>,
    /// --- info that has causally arrived here from the peer ---
    first_arrival: Option<SimTime>,
    arrived_seq_max: u64,
    arrived_syn_seq: Option<u64>,
    max_ack_arrived: u64,
    /// Upper bound on the peer-facing congestion window: initial cwnd
    /// plus one MSS per window-advancing ACK (slow start's growth rate;
    /// congestion avoidance grows slower, losses only shrink it).
    cwnd_cap: usize,
    max_right_edge: u64,
    last_arr_window: Option<usize>,
    dup_acks: u32,
    /// --- congestion-control recovery tracking ---
    /// Highest outstanding sequence when fast recovery last began
    /// (0 = not in recovery).
    recovery_high: u64,
    /// A partial ACK observed during fast recovery: `(hole start,
    /// when)`. Cleared by the retransmission that fills the hole.
    partial_ack_pending: Option<(u64, SimTime)>,
    /// Sender-facing SACK scoreboard: disjoint ascending ranges the peer
    /// reported received above the cumulative ACK.
    sacked: Vec<(u64, u64)>,
    /// Last congestion event observed at this sender: `(when, wmax
    /// estimate in bytes, CUBIC K in ms)`.
    cubic_epoch: Option<(SimTime, usize, u64)>,
    /// --- receiver-side stream reassembly ---
    rcv_nxt: Option<u64>,
    peer_fin_seq: Option<u64>,
    stash: BTreeMap<u64, bytes::Bytes>,
    stream: Vec<u8>,
    /// `(at, total stream bytes contiguous)` per advancing delivery.
    deliveries: Vec<(SimTime, u64)>,
}

impl EndState {
    fn new(addr: SockAddr, cfg: &CheckConfig) -> Self {
        EndState {
            addr,
            departed_any: false,
            snd_max: 0,
            fin_end: None,
            sent_rst: false,
            rst_arrived: None,
            last_ack_departed: 0,
            last_edge_departed: 0,
            last_syn_tx: None,
            syn_arrived_since_syn_tx: false,
            txs: Vec::new(),
            fresh_sent: Vec::new(),
            ack_departures: Vec::new(),
            first_arrival: None,
            arrived_seq_max: 0,
            arrived_syn_seq: None,
            max_ack_arrived: 0,
            cwnd_cap: cfg.tcp.initial_cwnd_segments as usize * cfg.tcp.mss,
            max_right_edge: 0,
            last_arr_window: None,
            dup_acks: 0,
            recovery_high: 0,
            partial_ack_pending: None,
            sacked: Vec::new(),
            cubic_epoch: None,
            rcv_nxt: None,
            peer_fin_seq: None,
            stash: BTreeMap::new(),
            stream: Vec::new(),
            deliveries: Vec::new(),
        }
    }

    fn nodelay(&self, cfg: &CheckConfig) -> bool {
        if self.addr.port == cfg.server_port {
            cfg.server_nodelay
        } else {
            cfg.client_nodelay
        }
    }
}

/// Insert `(start, end)` into a disjoint ascending range set, coalescing
/// overlapping or touching ranges.
fn merge_sacked(v: &mut Vec<(u64, u64)>, start: u64, end: u64) {
    if start >= end {
        return;
    }
    let mut new = (start, end);
    let mut i = 0;
    while i < v.len() {
        let (s, e) = v[i];
        if e < new.0 {
            i += 1;
            continue;
        }
        if s > new.1 {
            break;
        }
        new.0 = new.0.min(s);
        new.1 = new.1.max(e);
        v.remove(i);
    }
    v.insert(i, new);
}

fn check_conn(key: (SockAddr, SockAddr), conn: &Conn, cfg: &CheckConfig, report: &mut Report) {
    let mut events: Vec<Event> = Vec::with_capacity(conn.packets.len() + conn.arrivals.len());
    for (i, _) in conn.packets.iter().enumerate() {
        events.push(Event::Depart {
            at: conn.packets[i].sent,
            pkt: i,
        });
    }
    for &(at, pkt) in &conn.arrivals {
        events.push(Event::Arrive { at, pkt });
    }
    // Arrivals before departures at equal instants; then by emission
    // order (seq, seq_space) so same-instant batches replay as the TCB
    // emitted them; packet index last for stability.
    events.sort_by_key(|e| {
        let p = match *e {
            Event::Arrive { pkt, .. } | Event::Depart { pkt, .. } => pkt,
        };
        let seg = &conn.packets[p].seg;
        (e.at(), e.rank(), seg.seq, seg.seq_space(), p)
    });

    let mut ends = [EndState::new(key.0, cfg), EndState::new(key.1, cfg)];
    let mut any_packet_seen = false;
    let mut first_rst: Option<SimTime> = None;
    let v = |report: &mut Report, kind, at, detail: String| {
        report.violations.push(Violation {
            kind,
            conn: key,
            at,
            detail,
        });
    };

    for ev in &events {
        match *ev {
            Event::Arrive { at, pkt } => {
                let seg = &conn.packets[pkt].seg;
                // The receiver is the endpoint the segment is addressed to.
                let side = usize::from(seg.dst != key.0);
                let e = &mut ends[side];
                if e.first_arrival.is_none() {
                    e.first_arrival = Some(at);
                }
                if seg.flags.rst {
                    if e.rst_arrived.is_none() {
                        e.rst_arrived = Some(at);
                    }
                    first_rst = Some(first_rst.map_or(at, |t| t.min(at)));
                    continue;
                }
                e.arrived_seq_max = e.arrived_seq_max.max(seg.seq_end());
                e.last_arr_window = Some(seg.window);
                if seg.flags.syn {
                    e.arrived_syn_seq = Some(seg.seq);
                    e.syn_arrived_since_syn_tx = true;
                    e.rcv_nxt.get_or_insert(seg.seq + 1);
                }
                if seg.flags.ack {
                    e.max_right_edge = e.max_right_edge.max(seg.ack + seg.window as u64);
                    // Sender-facing SACK scoreboard: ranges the peer
                    // reports received need never be retransmitted.
                    for (s, end) in seg.sack.iter() {
                        merge_sacked(&mut e.sacked, s, end);
                    }
                    if seg.ack > e.max_ack_arrived {
                        e.max_ack_arrived = seg.ack;
                        e.cwnd_cap += cfg.tcp.mss;
                        e.dup_acks = 0;
                        e.sacked.retain(|&(_, end)| end > seg.ack);
                        if let Some(first) = e.sacked.first_mut() {
                            first.0 = first.0.max(seg.ack);
                        }
                        // Fast-recovery bookkeeping (RFC 6582): an ACK
                        // covering everything outstanding at loss time
                        // ends recovery; anything less is a partial ACK
                        // whose hole must be filled promptly.
                        if e.recovery_high > 0 {
                            if seg.ack >= e.recovery_high {
                                e.recovery_high = 0;
                                e.partial_ack_pending = None;
                            } else {
                                e.partial_ack_pending = Some((seg.ack, at));
                            }
                        }
                    } else if seg.ack == e.max_ack_arrived
                        && !seg.has_payload()
                        && !seg.flags.syn
                        && !seg.flags.fin
                        && e.snd_max > seg.ack
                    {
                        e.dup_acks += 1;
                        // RFC 6582 window inflation: NewReno/SACK
                        // senders grow cwnd by one MSS per duplicate
                        // ACK once fast retransmit triggers, so the
                        // envelope must credit the same allowance.
                        if matches!(cfg.tcp.cc, CcVariant::NewReno | CcVariant::Sack)
                            && e.dup_acks >= 3
                        {
                            e.cwnd_cap += if e.dup_acks == 3 {
                                3 * cfg.tcp.mss
                            } else {
                                cfg.tcp.mss
                            };
                        }
                    }
                }
                // Receiver-side reassembly of the peer's byte stream.
                if seg.flags.fin {
                    e.peer_fin_seq = Some(seg.seq_end() - 1);
                }
                if !seg.payload.is_empty() {
                    if let Some(rcv_nxt) = e.rcv_nxt {
                        let mut advanced = false;
                        let mut nxt = rcv_nxt;
                        if seg.seq <= nxt {
                            let skip = (nxt - seg.seq) as usize;
                            if skip < seg.payload.len() {
                                e.stream.extend_from_slice(&seg.payload[skip..]);
                                nxt += (seg.payload.len() - skip) as u64;
                                advanced = true;
                            }
                        } else {
                            e.stash
                                .entry(seg.seq)
                                .or_insert_with(|| seg.payload.clone());
                        }
                        // Drain any stashed out-of-order data that became
                        // contiguous.
                        while let Some((&s, _)) = e.stash.first_key_value() {
                            if s > nxt {
                                break;
                            }
                            let (s, data) = e.stash.pop_first().expect("non-empty stash");
                            let skip = (nxt - s) as usize;
                            if skip < data.len() {
                                e.stream.extend_from_slice(&data[skip..]);
                                nxt += (data.len() - skip) as u64;
                                advanced = true;
                            }
                        }
                        e.rcv_nxt = Some(nxt);
                        if advanced {
                            e.deliveries.push((at, e.stream.len() as u64));
                        }
                    }
                }
            }
            Event::Depart { at, pkt } => {
                let seg = &conn.packets[pkt].seg;
                let side = usize::from(seg.src != key.0);
                let mss = cfg.tcp.mss;

                // RST semantics first: an RST is exempt from the
                // sequence/ack discipline (a kernel reply echoes the
                // stray segment's ack as its seq).
                if seg.flags.rst {
                    first_rst = Some(first_rst.map_or(at, |t| t.min(at)));
                    if seg.has_payload() || seg.flags.syn || seg.flags.fin {
                        v(
                            report,
                            InvariantKind::RstWithPayload,
                            at,
                            format!("RST carries payload/SYN/FIN: {seg}"),
                        );
                    }
                    if !any_packet_seen {
                        v(
                            report,
                            InvariantKind::RstNotFirst,
                            at,
                            "RST is the first segment of the connection".into(),
                        );
                    }
                    let e = &mut ends[side];
                    if let Some(t) = e.rst_arrived {
                        if at > t {
                            v(
                                report,
                                InvariantKind::SilenceAfterRstRecvd,
                                at,
                                format!("RST sent after an RST arrived at {t}"),
                            );
                        }
                    }
                    e.sent_rst = true;
                    e.departed_any = true;
                    any_packet_seen = true;
                    continue;
                }

                // Immutable cross-side reads before borrowing mutably.
                let e = &ends[side];
                if !e.departed_any && !seg.flags.syn {
                    v(
                        report,
                        InvariantKind::SynFirst,
                        at,
                        format!("first segment lacks SYN: {seg}"),
                    );
                }
                if e.sent_rst {
                    v(
                        report,
                        InvariantKind::SilenceAfterRstSent,
                        at,
                        format!("segment after this endpoint sent RST: {seg}"),
                    );
                }
                if let Some(t) = e.rst_arrived {
                    if at > t {
                        v(
                            report,
                            InvariantKind::SilenceAfterRstRecvd,
                            at,
                            format!("segment sent after an RST arrived at {t}: {seg}"),
                        );
                    }
                }
                if seg.flags.ack {
                    if e.first_arrival.is_none() {
                        v(
                            report,
                            InvariantKind::HandshakeOrdering,
                            at,
                            format!("ACK-bearing segment before anything arrived: {seg}"),
                        );
                    }
                    if seg.ack > e.arrived_seq_max {
                        v(
                            report,
                            InvariantKind::AckNoUnsentData,
                            at,
                            format!(
                                "ack {} exceeds causally delivered sequence end {}",
                                seg.ack, e.arrived_seq_max
                            ),
                        );
                    }
                    if seg.ack < e.last_ack_departed {
                        v(
                            report,
                            InvariantKind::AckMonotonic,
                            at,
                            format!("ack {} after ack {}", seg.ack, e.last_ack_departed),
                        );
                    }
                    let edge = seg.ack + seg.window as u64;
                    if edge < e.last_edge_departed {
                        v(
                            report,
                            InvariantKind::WindowEdgeNoShrink,
                            at,
                            format!(
                                "advertised right edge shrank {} -> {edge}",
                                e.last_edge_departed
                            ),
                        );
                    }
                    if seg.flags.syn {
                        // SYN-ACK: must acknowledge the peer's ISS + 1.
                        match e.arrived_syn_seq {
                            Some(iss) if seg.ack == iss + 1 => {}
                            Some(iss) => v(
                                report,
                                InvariantKind::SynAckAcksIss,
                                at,
                                format!("SYN-ACK acks {} (peer ISS {iss})", seg.ack),
                            ),
                            None => v(
                                report,
                                InvariantKind::HandshakeOrdering,
                                at,
                                "SYN-ACK before any SYN arrived".into(),
                            ),
                        }
                    }
                }
                if seg.payload.len() > mss {
                    v(
                        report,
                        InvariantKind::MssRespect,
                        at,
                        format!("payload {} exceeds MSS {mss}", seg.payload.len()),
                    );
                }

                if seg.seq_space() > 0 {
                    let fresh = seg.seq >= e.snd_max;
                    let is_probe = seg.payload.len() == 1 && e.last_arr_window == Some(0);
                    // A segment may re-cover old space or extend it, but
                    // never *start* beyond snd_max (sequence gap).
                    if seg.seq > e.snd_max {
                        v(
                            report,
                            InvariantKind::SeqContiguous,
                            at,
                            format!("seq {} leaves a gap above snd_max {}", seg.seq, e.snd_max),
                        );
                    }
                    if let Some(fin_end) = e.fin_end {
                        if seg.seq_end() > fin_end {
                            v(
                                report,
                                InvariantKind::DataAfterFin,
                                at,
                                format!(
                                    "sequence space {}..{} beyond FIN end {fin_end}",
                                    seg.seq,
                                    seg.seq_end()
                                ),
                            );
                        }
                        if seg.flags.fin && seg.seq_end() != fin_end {
                            v(
                                report,
                                InvariantKind::FinSeqStable,
                                at,
                                format!("FIN moved from {fin_end} to {}", seg.seq_end()),
                            );
                        }
                    }
                    if !seg.payload.is_empty() && !is_probe {
                        let payload_end = seg.seq + seg.payload.len() as u64;
                        if payload_end > e.max_right_edge && e.max_right_edge > 0 {
                            v(
                                report,
                                InvariantKind::WindowRespect,
                                at,
                                format!(
                                    "payload end {payload_end} beyond advertised right edge {}",
                                    e.max_right_edge
                                ),
                            );
                        }
                    }
                    if seg.seq_end() > e.snd_max {
                        // Extending flight: check the congestion bound.
                        // +2 covers the SYN/FIN sequence units which are
                        // not payload subject to cwnd.
                        let in_flight = (seg.seq_end() - e.max_ack_arrived) as usize;
                        if in_flight > e.cwnd_cap + 2 {
                            v(
                                report,
                                InvariantKind::CwndRespect,
                                at,
                                format!(
                                    "{in_flight} bytes in flight exceeds cwnd bound {}",
                                    e.cwnd_cap
                                ),
                            );
                        }
                        // Under CUBIC, flight past a congestion event is
                        // additionally bounded by the cubic window of
                        // elapsed time (RFC 8312 §4.1). Slack of 4 MSS
                        // covers slow-start overshoot and the SYN/FIN
                        // sequence units.
                        if cfg.tcp.cc == CcVariant::Cubic {
                            if let Some((t0, wmax, k_ms)) = e.cubic_epoch {
                                let elapsed_ms = at.since(t0).as_nanos() / 1_000_000;
                                let bound =
                                    netsim::cubic_window(wmax, mss, elapsed_ms, k_ms) + 4 * mss;
                                if in_flight > bound {
                                    v(
                                        report,
                                        InvariantKind::CubicGrowthBound,
                                        at,
                                        format!(
                                            "{in_flight} bytes in flight exceeds cubic bound \
                                             {bound} ({elapsed_ms}ms after loss, wmax {wmax})",
                                        ),
                                    );
                                }
                            }
                        }
                    }
                    // Nagle: a *fresh* sub-MSS data segment may not depart
                    // while earlier data is unacknowledged (FIN-bearing
                    // segments and zero-window probes are exempt).
                    if fresh
                        && !seg.payload.is_empty()
                        && seg.payload.len() < mss
                        && !seg.flags.fin
                        && !seg.flags.syn
                        && !e.nodelay(cfg)
                        && !is_probe
                        && e.snd_max > e.max_ack_arrived
                    {
                        v(
                            report,
                            InvariantKind::NagleHold,
                            at,
                            format!(
                                "fresh {}-byte segment with {} bytes in flight under Nagle",
                                seg.payload.len(),
                                e.snd_max - e.max_ack_arrived
                            ),
                        );
                    }
                    // Retransmission justification for re-covered space.
                    if !fresh {
                        // A NewReno/SACK sender fills the hole a partial
                        // ACK exposed without waiting for timeout or
                        // fresh duplicate ACKs (RFC 6582 §3.2).
                        let cc_partial = matches!(cfg.tcp.cc, CcVariant::NewReno | CcVariant::Sack);
                        let partial_answer = cc_partial
                            && e.partial_ack_pending
                                .is_some_and(|(hole, _)| hole == seg.seq);
                        if let Some((hole, t_set)) = e.partial_ack_pending {
                            if cc_partial && hole == seg.seq && at.since(t_set) >= cfg.tcp.min_rto {
                                v(
                                    report,
                                    InvariantKind::NewRenoPartialAck,
                                    at,
                                    format!(
                                        "partial ACK {hole} answered only {} later — the \
                                         sender fell back to timeout slow start instead of \
                                         filling the hole in recovery",
                                        at.since(t_set)
                                    ),
                                );
                            }
                        }
                        // Never retransmit sequence space the peer has
                        // already reported received in a SACK block
                        // (RFC 2018 §8).
                        if !seg.payload.is_empty() && !is_probe {
                            let p_end = seg.seq + seg.payload.len() as u64;
                            if let Some(&(bs, be)) = e
                                .sacked
                                .iter()
                                .find(|&&(bs, be)| bs.max(seg.seq) < be.min(p_end))
                            {
                                v(
                                    report,
                                    InvariantKind::SackRexmitSacked,
                                    at,
                                    format!(
                                        "retransmission {}..{p_end} overlaps SACKed range \
                                         {bs}..{be}",
                                        seg.seq
                                    ),
                                );
                            }
                        }
                        let octet = seg.seq;
                        let last_tx = e
                            .txs
                            .iter()
                            .rev()
                            .find(|&&(s, end, _, _)| s <= octet && octet < end);
                        if let Some(&(_, _, last_at, last_len)) = last_tx {
                            let waited = at.since(last_at) >= cfg.tcp.min_rto;
                            let fast = e.dup_acks >= 3;
                            let probe_recover = last_len == 1;
                            let syn_answer = seg.flags.syn && e.syn_arrived_since_syn_tx;
                            if !(waited
                                || fast
                                || probe_recover
                                || is_probe
                                || syn_answer
                                || partial_answer)
                            {
                                v(
                                    report,
                                    InvariantKind::RexmitJustified,
                                    at,
                                    format!(
                                        "seq {} re-sent {} after previous copy with {} dup-acks",
                                        seg.seq,
                                        at.since(last_at),
                                        e.dup_acks
                                    ),
                                );
                            }
                        }
                    }
                }

                // State updates after the checks.
                let prev_snd_max = ends[side].snd_max;
                let e = &mut ends[side];
                e.departed_any = true;
                any_packet_seen = true;
                if seg.flags.syn {
                    e.last_syn_tx = Some(at);
                    e.syn_arrived_since_syn_tx = false;
                }
                if seg.flags.ack {
                    e.last_ack_departed = seg.ack;
                    e.last_edge_departed = e.last_edge_departed.max(seg.ack + seg.window as u64);
                    e.ack_departures.push((at, seg.ack));
                }
                if seg.seq_space() > 0 {
                    // Congestion-recovery bookkeeping. A data
                    // retransmission is either RTO-style (a full
                    // min_rto elapsed since the previous copy — closes
                    // any fast recovery, RFC 6582 §3.2 step 1) or a
                    // fast/partial-ACK retransmit (opens recovery under
                    // >= 3 duplicate ACKs, clears the pending hole).
                    // Either way it is a congestion event for the CUBIC
                    // bound. Zero-window probes are exempt.
                    let is_probe = seg.payload.len() == 1 && e.last_arr_window == Some(0);
                    if seg.seq < prev_snd_max && !seg.payload.is_empty() && !is_probe {
                        let rto_style = e
                            .txs
                            .iter()
                            .rev()
                            .find(|&&(s, end, _, _)| s <= seg.seq && seg.seq < end)
                            .is_some_and(|&(_, _, last_at, _)| {
                                at.since(last_at) >= cfg.tcp.min_rto
                            });
                        if rto_style {
                            e.recovery_high = 0;
                            e.partial_ack_pending = None;
                        } else {
                            if e.dup_acks >= 3 && e.recovery_high == 0 {
                                e.recovery_high = prev_snd_max;
                            }
                            if e.partial_ack_pending
                                .is_some_and(|(hole, _)| hole == seg.seq)
                            {
                                e.partial_ack_pending = None;
                            }
                        }
                        let wmax = ((prev_snd_max - e.max_ack_arrived) as usize).max(2 * mss);
                        e.cubic_epoch = Some((at, wmax, netsim::cubic_k_ms(wmax, mss)));
                    }
                    e.txs.push((seg.seq, seg.seq_end(), at, seg.payload.len()));
                    if !seg.payload.is_empty() {
                        // Fresh payload range in stream offsets (data
                        // stream starts one past the SYN octet).
                        let payload_end = seg.seq + seg.payload.len() as u64;
                        let fresh_from = seg.seq.max(prev_snd_max.max(1));
                        if fresh_from < payload_end && fresh_from >= 1 {
                            e.fresh_sent.push((fresh_from - 1, payload_end - 1, at));
                        }
                    }
                    if seg.flags.fin && e.fin_end.is_none() {
                        e.fin_end = Some(seg.seq_end());
                    }
                    e.snd_max = e.snd_max.max(seg.seq_end());
                }
            }
        }
    }

    // Delayed-ACK checks: every advancing delivery at an endpoint must be
    // covered by an ACK departing within the delayed-ACK timeout, and no
    // three deliveries may pass without *any* ACK departing. Connections
    // that end in an RST are only held to deadlines that expired before
    // the reset.
    for recv in &ends {
        let iss_off = recv.rcv_nxt.map(|_| 1u64).unwrap_or(0);
        let deadline_cap = cfg.tcp.delayed_ack;
        for &(t, covered) in &recv.deliveries {
            let deadline = t + deadline_cap;
            if let Some(rst) = first_rst {
                if deadline >= rst {
                    continue;
                }
            }
            let need_ack = covered + iss_off; // stream bytes -> seq space
            let acked_in_time = recv
                .ack_departures
                .iter()
                .any(|&(s, a)| a >= need_ack && s <= deadline);
            if !acked_in_time {
                v(
                    report,
                    InvariantKind::DelayedAckDeadline,
                    t,
                    format!(
                        "data delivered at {t} not acknowledged to {need_ack} within {}",
                        deadline_cap
                    ),
                );
            }
        }
        for w in recv.deliveries.windows(3) {
            let (t1, t3) = (w[0].0, w[2].0);
            if let Some(rst) = first_rst {
                if t3 >= rst {
                    continue;
                }
            }
            let any_ack = recv.ack_departures.iter().any(|&(s, _)| s >= t1 && s <= t3);
            if !any_ack {
                v(
                    report,
                    InvariantKind::DelayedAckForce,
                    t3,
                    format!("three data deliveries {t1}..{t3} without an ACK departing"),
                );
            }
        }
    }

    if cfg.http {
        if let Some((req, resp)) = http_sides(key, &ends, cfg.server_port) {
            // A multiplexed connection announces itself with the httpmux
            // preface; everything else is judged as HTTP/1.x.
            if req.stream.len() >= httpmux::PREFACE.len() && httpmux::preface_candidate(req.stream)
            {
                crate::mux::check_mux(key, req, resp, first_rst, report);
            } else {
                crate::http::check_http(key, req, resp, first_rst, report);
            }
        }
    }
}

/// One HTTP direction as the checker sees it: the reassembled byte
/// stream, when each prefix became contiguous at the receiver, and when
/// each byte first departed the sender.
pub(crate) struct HttpSide<'a> {
    pub stream: &'a [u8],
    /// `(at, contiguous stream bytes)` per advancing delivery at the
    /// receiver, in time order.
    pub deliveries: &'a [(SimTime, u64)],
    /// `(stream_start, stream_end, at)` first-emission ranges at the
    /// sender, in increasing offset order.
    pub fresh_sent: &'a [(u64, u64, SimTime)],
    /// Whether the sender half-closed this direction with a FIN.
    pub fin_seen: bool,
}

impl HttpSide<'_> {
    /// When the byte at `off` became contiguous at the receiver.
    pub fn covered_at(&self, off: u64) -> Option<SimTime> {
        self.deliveries
            .iter()
            .find(|&&(_, covered)| covered > off)
            .map(|&(t, _)| t)
    }

    /// When the byte at `off` first departed the sender.
    pub fn first_sent_at(&self, off: u64) -> Option<SimTime> {
        self.fresh_sent
            .iter()
            .find(|&&(s, e, _)| s <= off && off < e)
            .map(|&(_, _, t)| t)
    }
}

fn http_sides<'a>(
    key: (SockAddr, SockAddr),
    ends: &'a [EndState; 2],
    server_port: u16,
) -> Option<(HttpSide<'a>, HttpSide<'a>)> {
    // Identify the server endpoint by port; the request stream is what
    // the *server side* reassembled, the response stream is what the
    // client side reassembled.
    let server_side = if key.0.port == server_port {
        0
    } else if key.1.port == server_port {
        1
    } else {
        return None;
    };
    let client_side = 1 - server_side;
    let req = HttpSide {
        stream: &ends[server_side].stream,
        deliveries: &ends[server_side].deliveries,
        fresh_sent: &ends[client_side].fresh_sent,
        fin_seen: ends[client_side].fin_end.is_some(),
    };
    let resp = HttpSide {
        stream: &ends[client_side].stream,
        deliveries: &ends[client_side].deliveries,
        fresh_sent: &ends[server_side].fresh_sent,
        fin_seen: ends[server_side].fin_end.is_some(),
    };
    Some((req, resp))
}
