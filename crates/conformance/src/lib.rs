//! Trace-invariant checker for the simulator's TCP and HTTP behaviour.
//!
//! The paper's measurements are only meaningful if the protocol stacks
//! under test are *correct*: a Nagle interaction, a premature close or a
//! broken delayed-ACK timer all show up as performance numbers that look
//! plausible but measure a bug. This crate consumes a full packet trace
//! ([`netsim::TraceRecord`]s plus [`netsim::DropRecord`]s) and verifies a
//! set of machine-checked invariants against every connection it finds:
//! handshake ordering, sequence/ack discipline, window, MSS and
//! congestion-window respect, delayed-ACK deadlines, the Nagle rule,
//! FIN/RST semantics, retransmission justification, and — above TCP —
//! HTTP message framing, pipelining order and persistent-connection
//! rules over the reassembled byte streams.
//!
//! The checker is *causal*: it replays departures and arrivals in time
//! order and only ever holds an endpoint to information that had reached
//! it. Dropped packets count as departures (the sender did emit them);
//! network-duplicated deliveries are folded back into one emission.
//!
//! Entry point: [`check_trace`]. The harness-facing wrapper lives in
//! `httpipe-core::harness::run_cells_checked`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod check;
mod http;
mod mux;

pub use check::check_trace;

use netsim::{SimTime, SockAddr, TcpConfig};
use std::fmt;

/// Every invariant the checker can report. Each variant is exercised by a
/// mutation test in `tests/mutations.rs` that deliberately breaks it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)] // the labels below document each variant
pub enum InvariantKind {
    /// An endpoint's first segment on a connection must carry SYN (or be
    /// a kernel RST reply to a closed port).
    SynFirst,
    /// No ACK-bearing segment may depart before anything arrived from the
    /// peer — you cannot acknowledge what you have not heard.
    HandshakeOrdering,
    /// A SYN-ACK must acknowledge exactly the peer's ISS + 1.
    SynAckAcksIss,
    /// Sequence space is used contiguously: no departure starts beyond
    /// the highest sequence already sent (no gaps).
    SeqContiguous,
    /// Cumulative acknowledgements never move backwards.
    AckMonotonic,
    /// An acknowledgement never covers sequence space the peer has not
    /// causally delivered to this endpoint.
    AckNoUnsentData,
    /// No segment carries more payload than the MSS.
    MssRespect,
    /// Data never exceeds the peer's advertised window right edge
    /// (one-byte zero-window probes exempt).
    WindowRespect,
    /// The advertised window right edge (ack + window) never shrinks.
    WindowEdgeNoShrink,
    /// Bytes in flight never exceed the slow-start upper bound on the
    /// congestion window.
    CwndRespect,
    /// In-order data is acknowledged within the delayed-ACK timeout.
    DelayedAckDeadline,
    /// An ACK is forced at least every second full segment: three
    /// deliveries never pass without an acknowledgement departing.
    DelayedAckForce,
    /// With Nagle enabled, no fresh sub-MSS segment departs while data is
    /// in flight (zero-window probes and FIN-bearing segments exempt).
    NagleHold,
    /// No new sequence space is used after the FIN (retransmission of the
    /// FIN itself is allowed).
    DataAfterFin,
    /// Every FIN retransmission occupies the same sequence number.
    FinSeqStable,
    /// An RST carries no payload, SYN or FIN.
    RstWithPayload,
    /// An RST never opens a connection: some segment must precede it.
    RstNotFirst,
    /// After sending an RST an endpoint sends nothing further (more RSTs
    /// from the kernel for stray arrivals are allowed).
    SilenceAfterRstSent,
    /// After an RST arrives an endpoint sends nothing further.
    SilenceAfterRstRecvd,
    /// Re-covering already-sent sequence space is only legitimate after a
    /// retransmission timeout or three duplicate ACKs.
    RexmitJustified,
    /// The client→server byte stream parses as well-formed HTTP requests.
    HttpRequestParse,
    /// The server→client byte stream parses as well-formed HTTP
    /// responses with framing (Content-Length / chunked) matching the
    /// body.
    HttpResponseParse,
    /// No byte of response *i* departs the server before request *i* has
    /// fully arrived.
    ResponseBeforeRequest,
    /// A connection never carries more responses than requests.
    PipelineOrder,
    /// A cleanly closed stream leaves no unparsed trailing bytes.
    StreamLeftover,
    /// After a `Connection: close` response arrives, the client sends no
    /// further request on that connection.
    ConnectionCloseRespected,
    /// A multiplexed connection's byte streams parse as well-formed
    /// `httpmux` frames (preface, length prefixes, payload shapes), with
    /// no trailing bytes at a clean close.
    MuxFrameParse,
    /// Stream identifiers are monotonic per initiator: client-opened
    /// streams are odd and strictly increasing, server-promised streams
    /// are even and strictly increasing.
    MuxStreamIdMonotonic,
    /// Flow-control windows never go negative: no DATA departs beyond
    /// the per-stream or connection credit its sender has received.
    MuxWindowNonNegative,
    /// No DATA or HEADERS departs on a stream after its sender signalled
    /// END_STREAM (reset streams exempt).
    MuxDataAfterEndStream,
    /// PUSH_PROMISE only travels server→client and must reference an
    /// open client-initiated stream.
    MuxPushPromiseInvalid,
    /// A NewReno/SACK sender in fast recovery must not re-enter slow
    /// start on a partial ACK: the retransmission answering a partial
    /// ACK departs without collapsing the congestion window to one
    /// segment (RFC 6582 §3.2).
    NewRenoPartialAck,
    /// A sender never retransmits sequence space the peer has already
    /// reported received in a SACK block (RFC 2018 §8: data covered by
    /// a SACK need not be retransmitted before the scoreboard clears).
    SackRexmitSacked,
    /// Under CUBIC, bytes in flight stay bounded by the cubic window
    /// function of time since the last congestion event (RFC 8312 §4.1),
    /// with slack for the in-flight measurement granularity.
    CubicGrowthBound,
}

impl InvariantKind {
    /// Every invariant, for enumeration in reports and tests.
    pub const ALL: [InvariantKind; 34] = [
        InvariantKind::SynFirst,
        InvariantKind::HandshakeOrdering,
        InvariantKind::SynAckAcksIss,
        InvariantKind::SeqContiguous,
        InvariantKind::AckMonotonic,
        InvariantKind::AckNoUnsentData,
        InvariantKind::MssRespect,
        InvariantKind::WindowRespect,
        InvariantKind::WindowEdgeNoShrink,
        InvariantKind::CwndRespect,
        InvariantKind::DelayedAckDeadline,
        InvariantKind::DelayedAckForce,
        InvariantKind::NagleHold,
        InvariantKind::DataAfterFin,
        InvariantKind::FinSeqStable,
        InvariantKind::RstWithPayload,
        InvariantKind::RstNotFirst,
        InvariantKind::SilenceAfterRstSent,
        InvariantKind::SilenceAfterRstRecvd,
        InvariantKind::RexmitJustified,
        InvariantKind::HttpRequestParse,
        InvariantKind::HttpResponseParse,
        InvariantKind::ResponseBeforeRequest,
        InvariantKind::PipelineOrder,
        InvariantKind::StreamLeftover,
        InvariantKind::ConnectionCloseRespected,
        InvariantKind::MuxFrameParse,
        InvariantKind::MuxStreamIdMonotonic,
        InvariantKind::MuxWindowNonNegative,
        InvariantKind::MuxDataAfterEndStream,
        InvariantKind::MuxPushPromiseInvalid,
        InvariantKind::NewRenoPartialAck,
        InvariantKind::SackRexmitSacked,
        InvariantKind::CubicGrowthBound,
    ];

    /// Short stable identifier for reports.
    pub fn label(self) -> &'static str {
        match self {
            InvariantKind::SynFirst => "syn-first",
            InvariantKind::HandshakeOrdering => "handshake-ordering",
            InvariantKind::SynAckAcksIss => "synack-acks-iss",
            InvariantKind::SeqContiguous => "seq-contiguous",
            InvariantKind::AckMonotonic => "ack-monotonic",
            InvariantKind::AckNoUnsentData => "ack-no-unsent-data",
            InvariantKind::MssRespect => "mss-respect",
            InvariantKind::WindowRespect => "window-respect",
            InvariantKind::WindowEdgeNoShrink => "window-edge-no-shrink",
            InvariantKind::CwndRespect => "cwnd-respect",
            InvariantKind::DelayedAckDeadline => "delayed-ack-deadline",
            InvariantKind::DelayedAckForce => "delayed-ack-force",
            InvariantKind::NagleHold => "nagle-hold",
            InvariantKind::DataAfterFin => "data-after-fin",
            InvariantKind::FinSeqStable => "fin-seq-stable",
            InvariantKind::RstWithPayload => "rst-with-payload",
            InvariantKind::RstNotFirst => "rst-not-first",
            InvariantKind::SilenceAfterRstSent => "silence-after-rst-sent",
            InvariantKind::SilenceAfterRstRecvd => "silence-after-rst-recvd",
            InvariantKind::RexmitJustified => "rexmit-justified",
            InvariantKind::HttpRequestParse => "http-request-parse",
            InvariantKind::HttpResponseParse => "http-response-parse",
            InvariantKind::ResponseBeforeRequest => "response-before-request",
            InvariantKind::PipelineOrder => "pipeline-order",
            InvariantKind::StreamLeftover => "stream-leftover",
            InvariantKind::ConnectionCloseRespected => "connection-close-respected",
            InvariantKind::MuxFrameParse => "mux-frame-parse",
            InvariantKind::MuxStreamIdMonotonic => "mux-stream-id-monotonic",
            InvariantKind::MuxWindowNonNegative => "mux-window-non-negative",
            InvariantKind::MuxDataAfterEndStream => "mux-data-after-end-stream",
            InvariantKind::MuxPushPromiseInvalid => "mux-push-promise-invalid",
            InvariantKind::NewRenoPartialAck => "newreno-partial-ack",
            InvariantKind::SackRexmitSacked => "sack-rexmit-sacked",
            InvariantKind::CubicGrowthBound => "cubic-growth-bound",
        }
    }
}

impl fmt::Display for InvariantKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One invariant violation found in a trace.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which invariant was broken.
    pub kind: InvariantKind,
    /// The connection's endpoint pair (lower address first).
    pub conn: (SockAddr, SockAddr),
    /// Simulated time of the offending event.
    pub at: SimTime,
    /// Human-readable specifics.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} {}<->{}: {}",
            self.kind, self.at, self.conn.0, self.conn.1, self.detail
        )
    }
}

/// What the checker needs to know about the configuration a trace was
/// produced under.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// TCP parameters both hosts ran with (MSS, delayed-ACK timeout,
    /// minimum RTO, initial cwnd).
    pub tcp: TcpConfig,
    /// Whether the client side set TCP_NODELAY (disables the Nagle
    /// check for its segments).
    pub client_nodelay: bool,
    /// Whether the server side set TCP_NODELAY.
    pub server_nodelay: bool,
    /// The server's listening port: identifies the server side of each
    /// connection and the direction of the HTTP streams.
    pub server_port: u16,
    /// Run the HTTP-level checks (parse/reassemble every stream).
    pub http: bool,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            tcp: TcpConfig::default(),
            client_nodelay: true,
            server_nodelay: true,
            server_port: 80,
            http: true,
        }
    }
}

/// The outcome of checking one trace (or, merged, many traces).
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Every violation found, in deterministic (connection, time) order.
    pub violations: Vec<Violation>,
    /// Connections examined.
    pub connections: usize,
    /// Unique segment emissions examined (network duplicates folded).
    pub segments: usize,
    /// HTTP requests successfully parsed from the traces.
    pub http_requests: usize,
}

impl Report {
    /// True when no invariant was violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Whether a violation of `kind` is present.
    pub fn has(&self, kind: InvariantKind) -> bool {
        self.violations.iter().any(|v| v.kind == kind)
    }

    /// Fold another report into this one (for multi-cell sweeps).
    pub fn merge(&mut self, other: Report) {
        self.violations.extend(other.violations);
        self.connections += other.connections;
        self.segments += other.segments;
        self.http_requests += other.http_requests;
    }

    /// One-line summary for logs.
    pub fn summary(&self) -> String {
        format!(
            "{} connections, {} segments, {} http requests: {}",
            self.connections,
            self.segments,
            self.http_requests,
            if self.is_clean() {
                "clean".to_string()
            } else {
                format!("{} violations", self.violations.len())
            }
        )
    }
}
