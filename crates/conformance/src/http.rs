//! HTTP-level invariants over the reassembled byte streams of one
//! connection: message framing, pipelining order, response/request
//! causality and persistent-connection rules.

use crate::check::HttpSide;
use crate::{InvariantKind, Report, Violation};
use httpwire::{RequestParser, ResponseParser};
use netsim::{SimTime, SockAddr};

/// Byte offsets one parsed message occupies in its stream.
struct Span {
    start: u64,
    end: u64,
}

pub(crate) fn check_http(
    key: (SockAddr, SockAddr),
    req_side: HttpSide<'_>,
    resp_side: HttpSide<'_>,
    first_rst: Option<SimTime>,
    report: &mut Report,
) {
    if req_side.stream.is_empty() && resp_side.stream.is_empty() {
        return; // e.g. a SYN answered by a kernel RST: nothing to parse
    }
    let reset = first_rst.is_some();
    let v = |report: &mut Report, kind, at, detail: String| {
        report.violations.push(Violation {
            kind,
            conn: key,
            at,
            detail,
        });
    };
    let t_end = req_side
        .deliveries
        .iter()
        .chain(resp_side.deliveries.iter())
        .map(|&(t, _)| t)
        .max()
        .unwrap_or(SimTime::ZERO);

    // --- Requests: the client→server stream must parse cleanly. ---
    let mut reqs: Vec<(httpwire::Request, Span)> = Vec::new();
    let mut rp = RequestParser::new();
    rp.feed(req_side.stream);
    let total = req_side.stream.len() as u64;
    loop {
        let before = rp.buffered() as u64;
        match rp.next() {
            Ok(Some(req)) => {
                let after = rp.buffered() as u64;
                reqs.push((
                    req,
                    Span {
                        start: total - before,
                        end: total - after,
                    },
                ));
            }
            Ok(None) => break,
            Err(e) => {
                v(
                    report,
                    InvariantKind::HttpRequestParse,
                    t_end,
                    format!("request stream does not parse: {e:?}"),
                );
                return; // offsets are meaningless past a parse error
            }
        }
    }
    if rp.buffered() > 0 && req_side.fin_seen && !reset {
        v(
            report,
            InvariantKind::StreamLeftover,
            t_end,
            format!("{} unparsed request bytes at clean close", rp.buffered()),
        );
    }
    report.http_requests += reqs.len();

    // --- Responses: parse with each request's method expectation so
    // HEAD/304 bodyless framing is honoured. ---
    let mut resps: Vec<(httpwire::Response, Span)> = Vec::new();
    let mut pp = ResponseParser::new();
    for (req, _) in &reqs {
        pp.expect(req.method);
    }
    pp.feed(resp_side.stream);
    let rtotal = resp_side.stream.len() as u64;
    let mut parse_err = false;
    loop {
        let before = pp.buffered() as u64;
        match pp.next() {
            Ok(Some(resp)) => {
                let after = pp.buffered() as u64;
                resps.push((
                    resp,
                    Span {
                        start: rtotal - before,
                        end: rtotal - after,
                    },
                ));
            }
            Ok(None) => {
                if pp.buffered() == 0 {
                    break;
                }
                // Trailing bytes that are not a complete response. On a
                // cleanly closed stream, try close-delimited framing;
                // whatever still remains is a violation.
                if resp_side.fin_seen && !reset {
                    let before = pp.buffered() as u64;
                    match pp.finish() {
                        Ok(Some(resp)) => {
                            let after = pp.buffered() as u64;
                            resps.push((
                                resp,
                                Span {
                                    start: rtotal - before,
                                    end: rtotal - after,
                                },
                            ));
                            if pp.buffered() == 0 {
                                break;
                            }
                        }
                        Ok(None) => {}
                        Err(e) => {
                            v(
                                report,
                                InvariantKind::HttpResponseParse,
                                t_end,
                                format!("response stream does not parse at close: {e:?}"),
                            );
                            parse_err = true;
                        }
                    }
                    if !parse_err && pp.buffered() > 0 {
                        v(
                            report,
                            InvariantKind::StreamLeftover,
                            t_end,
                            format!("{} unparsed response bytes at clean close", pp.buffered()),
                        );
                    }
                }
                break;
            }
            Err(e) => {
                v(
                    report,
                    InvariantKind::HttpResponseParse,
                    t_end,
                    format!("response stream does not parse: {e:?}"),
                );
                break;
            }
        }
    }

    if resps.len() > reqs.len() {
        v(
            report,
            InvariantKind::PipelineOrder,
            t_end,
            format!(
                "{} responses for {} requests on one connection",
                resps.len(),
                reqs.len()
            ),
        );
    }

    // --- Causality: response i departs only after request i arrived. ---
    for (i, (_, rspan)) in resps.iter().enumerate() {
        let Some((_, qspan)) = reqs.get(i) else { break };
        let sent = resp_side.first_sent_at(rspan.start);
        let req_done = req_side.covered_at(qspan.end.saturating_sub(1));
        if let (Some(sent), Some(req_done)) = (sent, req_done) {
            if sent < req_done {
                v(
                    report,
                    InvariantKind::ResponseBeforeRequest,
                    sent,
                    format!(
                        "response {i} first byte departed {sent}, before its request \
                         completed at {req_done}"
                    ),
                );
            }
        }
    }

    // --- Persistent connections: after a `Connection: close` response
    // has arrived, the client may not start another request. ---
    let mut close_at: Option<SimTime> = None;
    for (resp, rspan) in &resps {
        if resp.headers.has_token("connection", "close") {
            if let Some(t) = resp_side.covered_at(rspan.end.saturating_sub(1)) {
                close_at = Some(close_at.map_or(t, |c: SimTime| c.min(t)));
            }
        }
    }
    if let Some(close_at) = close_at {
        for (i, (_, qspan)) in reqs.iter().enumerate() {
            if let Some(sent) = req_side.first_sent_at(qspan.start) {
                if sent > close_at {
                    v(
                        report,
                        InvariantKind::ConnectionCloseRespected,
                        sent,
                        format!(
                            "request {i} departed {sent}, after a Connection: close \
                             response arrived at {close_at}"
                        ),
                    );
                }
            }
        }
    }
}
