//! Frame-level invariants over a multiplexed (`httpmux`) connection's
//! reassembled byte streams: frame well-formedness, per-initiator
//! stream-ID monotonicity, flow-control window accounting, END_STREAM
//! discipline and push legality.
//!
//! The checker is causal in the same sense as the TCP layer: frames are
//! replayed in merged wall-clock order — a DATA frame is judged against
//! the window credit whose WINDOW_UPDATE had *arrived* at its sender by
//! the time the frame departed, never against credit still in flight.

use crate::check::HttpSide;
use crate::{InvariantKind, Report, Violation};
use httpmux::{Frame, FrameParser, FramePayload, DEFAULT_WINDOW, SETTING_INITIAL_WINDOW};
use netsim::{SimTime, SockAddr};
use std::collections::{BTreeMap, BTreeSet};

/// One parsed frame with the times its bytes left the sender and became
/// contiguous at the receiver (`None` when the trace never delivered
/// them, e.g. past a reset).
struct TimedFrame {
    frame: Frame,
    sent: Option<SimTime>,
    recvd: Option<SimTime>,
}

/// Direction index: 0 = client→server, 1 = server→client.
const CLIENT: usize = 0;

pub(crate) fn check_mux(
    key: (SockAddr, SockAddr),
    req_side: HttpSide<'_>,
    resp_side: HttpSide<'_>,
    first_rst: Option<SimTime>,
    report: &mut Report,
) {
    let reset = first_rst.is_some();
    let t_end = req_side
        .deliveries
        .iter()
        .chain(resp_side.deliveries.iter())
        .map(|&(t, _)| t)
        .max()
        .unwrap_or(SimTime::ZERO);
    let v = |report: &mut Report, kind, at, detail: String| {
        report.violations.push(Violation {
            kind,
            conn: key,
            at,
            detail,
        });
    };

    let sides = [&req_side, &resp_side];
    let mut frames: [Vec<TimedFrame>; 2] = [Vec::new(), Vec::new()];
    for (dir, side) in sides.iter().enumerate() {
        let mut parser = if dir == CLIENT {
            FrameParser::with_preface()
        } else {
            FrameParser::new()
        };
        parser.feed(side.stream);
        let total = side.stream.len() as u64;
        loop {
            let before = parser.buffered() as u64;
            match parser.next_frame() {
                Ok(Some(frame)) => {
                    let after = parser.buffered() as u64;
                    let start = total - before;
                    let end = total - after;
                    frames[dir].push(TimedFrame {
                        frame,
                        sent: side.first_sent_at(start),
                        recvd: side.covered_at(end.saturating_sub(1)),
                    });
                }
                Ok(None) => {
                    if parser.buffered() > 0 && side.fin_seen && !reset {
                        v(
                            report,
                            InvariantKind::MuxFrameParse,
                            t_end,
                            format!(
                                "{} trailing bytes at clean close of the {} stream",
                                parser.buffered(),
                                dir_name(dir)
                            ),
                        );
                    }
                    break;
                }
                Err(e) => {
                    v(
                        report,
                        InvariantKind::MuxFrameParse,
                        t_end,
                        format!("{} stream does not parse: {e}", dir_name(dir)),
                    );
                    break;
                }
            }
        }
    }

    report.http_requests += frames[CLIENT]
        .iter()
        .filter(|t| matches!(t.frame.payload, FramePayload::Headers(_)))
        .count();

    // --- Merged causal replay. Arrivals credit before same-instant
    // departures spend, mirroring an engine that drains its input before
    // producing output.
    #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
    enum Kind {
        Arrive,
        Depart,
    }
    let mut events: Vec<(SimTime, Kind, usize, usize)> = Vec::new();
    for (dir, list) in frames.iter().enumerate() {
        for (i, tf) in list.iter().enumerate() {
            if let Some(at) = tf.sent {
                events.push((at, Kind::Depart, dir, i));
            }
            if let Some(at) = tf.recvd {
                events.push((at, Kind::Arrive, dir, i));
            }
        }
    }
    events.sort();

    // Sender-side flow-control state per direction.
    let mut conn_win = [i64::from(DEFAULT_WINDOW); 2];
    let mut initial_win = [i64::from(DEFAULT_WINDOW); 2];
    let mut stream_win: [BTreeMap<u32, i64>; 2] = [BTreeMap::new(), BTreeMap::new()];
    // Stream bookkeeping.
    let mut highest_odd = 0u32; // client-opened
    let mut highest_even = 0u32; // server-promised
    let mut open_at_server: BTreeSet<u32> = BTreeSet::new();
    let mut done: [BTreeSet<u32>; 2] = [BTreeSet::new(), BTreeSet::new()];
    let mut reset_streams: BTreeSet<u32> = BTreeSet::new();

    for (at, kind, dir, i) in events {
        let tf = &frames[dir][i];
        match kind {
            Kind::Arrive => match &tf.frame.payload {
                FramePayload::WindowUpdate(inc) => {
                    let peer = 1 - dir;
                    if tf.frame.stream == 0 {
                        conn_win[peer] += i64::from(*inc);
                    } else {
                        *stream_win[peer]
                            .entry(tf.frame.stream)
                            .or_insert(initial_win[peer]) += i64::from(*inc);
                    }
                }
                FramePayload::Settings(settings) if tf.frame.flags == 0 => {
                    let peer = 1 - dir;
                    for &(id, value) in settings {
                        if id == SETTING_INITIAL_WINDOW {
                            let delta = i64::from(value) - initial_win[peer];
                            initial_win[peer] = i64::from(value);
                            for w in stream_win[peer].values_mut() {
                                *w += delta;
                            }
                        }
                    }
                }
                FramePayload::Headers(_) if dir == CLIENT => {
                    open_at_server.insert(tf.frame.stream);
                }
                _ => {}
            },
            Kind::Depart => {
                let stream = tf.frame.stream;
                match &tf.frame.payload {
                    FramePayload::Headers(_) => {
                        if dir == CLIENT {
                            if stream % 2 == 0 || stream <= highest_odd {
                                v(
                                    report,
                                    InvariantKind::MuxStreamIdMonotonic,
                                    at,
                                    format!(
                                        "client opened stream {stream} (highest so far \
                                         {highest_odd}; client streams must be odd and \
                                         increasing)"
                                    ),
                                );
                            } else {
                                highest_odd = stream;
                            }
                        }
                        check_not_done(
                            &done[dir],
                            &reset_streams,
                            stream,
                            dir,
                            at,
                            "HEADERS",
                            report,
                            key,
                        );
                        if tf.frame.end_stream() {
                            done[dir].insert(stream);
                        }
                    }
                    FramePayload::Data(payload) => {
                        check_not_done(
                            &done[dir],
                            &reset_streams,
                            stream,
                            dir,
                            at,
                            "DATA",
                            report,
                            key,
                        );
                        if !payload.is_empty() && !reset_streams.contains(&stream) {
                            let w = stream_win[dir].entry(stream).or_insert(initial_win[dir]);
                            *w -= payload.len() as i64;
                            conn_win[dir] -= payload.len() as i64;
                            if *w < 0 {
                                v(
                                    report,
                                    InvariantKind::MuxWindowNonNegative,
                                    at,
                                    format!(
                                        "stream {stream} window driven to {w} by a \
                                         {}-byte DATA frame from the {}",
                                        payload.len(),
                                        dir_name(dir)
                                    ),
                                );
                            }
                            if conn_win[dir] < 0 {
                                v(
                                    report,
                                    InvariantKind::MuxWindowNonNegative,
                                    at,
                                    format!(
                                        "connection window driven to {} by a {}-byte \
                                         DATA frame from the {}",
                                        conn_win[dir],
                                        payload.len(),
                                        dir_name(dir)
                                    ),
                                );
                            }
                        }
                        if tf.frame.end_stream() {
                            done[dir].insert(stream);
                        }
                    }
                    FramePayload::PushPromise { promised, .. } => {
                        if dir == CLIENT {
                            v(
                                report,
                                InvariantKind::MuxPushPromiseInvalid,
                                at,
                                format!("client sent PUSH_PROMISE for stream {promised}"),
                            );
                        } else {
                            if stream % 2 == 0 || !open_at_server.contains(&stream) {
                                v(
                                    report,
                                    InvariantKind::MuxPushPromiseInvalid,
                                    at,
                                    format!(
                                        "PUSH_PROMISE on stream {stream}, which is not an \
                                         open client-initiated stream"
                                    ),
                                );
                            }
                            if promised % 2 != 0 || *promised <= highest_even {
                                v(
                                    report,
                                    InvariantKind::MuxStreamIdMonotonic,
                                    at,
                                    format!(
                                        "server promised stream {promised} (highest so far \
                                         {highest_even}; promised streams must be even and \
                                         increasing)"
                                    ),
                                );
                            } else {
                                highest_even = *promised;
                            }
                        }
                    }
                    FramePayload::RstStream(_) => {
                        reset_streams.insert(stream);
                    }
                    FramePayload::Settings(_) | FramePayload::WindowUpdate(_) => {}
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn check_not_done(
    done: &BTreeSet<u32>,
    reset_streams: &BTreeSet<u32>,
    stream: u32,
    dir: usize,
    at: SimTime,
    what: &str,
    report: &mut Report,
    key: (SockAddr, SockAddr),
) {
    if done.contains(&stream) && !reset_streams.contains(&stream) {
        report.violations.push(Violation {
            kind: InvariantKind::MuxDataAfterEndStream,
            conn: key,
            at,
            detail: format!(
                "{what} on stream {stream} after the {} signalled END_STREAM",
                dir_name(dir)
            ),
        });
    }
}

fn dir_name(dir: usize) -> &'static str {
    if dir == CLIENT {
        "client"
    } else {
        "server"
    }
}
