//! Benchmarks of the image codecs and content transforms: GIF LZW,
//! PNG encode/decode, MNG delta coding, the GIF→PNG conversion pipeline,
//! HTML tokenization and the CSS replacement analysis.

use httpipe_bench::{bench_fn, bench_throughput, group};
use webcontent::{convert, gif, html, mng, png, synth};

fn bench_gif() {
    let img = synth::graphic(160, 120, 64, 0.5, 7);
    let encoded = gif::encode(&img);
    let pixels = (img.width * img.height) as u64;
    group("gif");
    bench_throughput("encode_160x120", pixels, 50, || gif::encode(&img));
    bench_throughput("decode_160x120", pixels, 50, || {
        gif::decode(&encoded).unwrap()
    });
}

fn bench_png() {
    let img = synth::graphic(160, 120, 64, 0.5, 7);
    let encoded = png::encode(&img, png::PngOptions::default());
    let pixels = (img.width * img.height) as u64;
    group("png");
    bench_throughput("encode_160x120", pixels, 50, || {
        png::encode(&img, png::PngOptions::default())
    });
    bench_throughput("decode_160x120", pixels, 50, || {
        png::decode(&encoded).unwrap()
    });
}

fn bench_mng() {
    let anim = synth::animation(96, 72, 8, 21);
    group("mng");
    bench_fn("encode_8_frames", 50, || mng::encode(&anim));
    let encoded = mng::encode(&anim);
    bench_fn("decode_8_frames", 50, || mng::decode(&encoded).unwrap());
}

fn bench_conversion() {
    let site = webcontent::microscape::site();
    group("conversion");
    bench_fn("whole_site_gif_to_png_mng", 10, || {
        convert::convert_site(&site.images)
    });
}

fn bench_html() {
    let site = webcontent::microscape::site();
    let bytes = site.html.len() as u64;
    group("html");
    bench_throughput("tokenize_42k", bytes, 50, || html::tokenize(&site.html));
    bench_throughput("image_sources_42k", bytes, 50, || {
        html::inline_image_sources(&site.html)
    });
    bench_throughput("lowercase_rewrite_42k", bytes, 50, || {
        html::rewrite_tag_case(&site.html, false)
    });
    bench_fn("css_analysis", 50, || site.css_analysis());
}

fn main() {
    bench_gif();
    bench_png();
    bench_mng();
    bench_conversion();
    bench_html();
}
