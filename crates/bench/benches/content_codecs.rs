//! Benchmarks of the image codecs and content transforms: GIF LZW,
//! PNG encode/decode, MNG delta coding, the GIF→PNG conversion pipeline,
//! HTML tokenization and the CSS replacement analysis.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use webcontent::{convert, gif, html, mng, png, synth};

fn bench_gif(c: &mut Criterion) {
    let img = synth::graphic(160, 120, 64, 0.5, 7);
    let encoded = gif::encode(&img);
    let mut g = c.benchmark_group("gif");
    g.throughput(Throughput::Bytes((img.width * img.height) as u64));
    g.bench_function("encode_160x120", |b| b.iter(|| black_box(gif::encode(&img))));
    g.bench_function("decode_160x120", |b| {
        b.iter(|| black_box(gif::decode(&encoded).unwrap()))
    });
    g.finish();
}

fn bench_png(c: &mut Criterion) {
    let img = synth::graphic(160, 120, 64, 0.5, 7);
    let encoded = png::encode(&img, png::PngOptions::default());
    let mut g = c.benchmark_group("png");
    g.throughput(Throughput::Bytes((img.width * img.height) as u64));
    g.bench_function("encode_160x120", |b| {
        b.iter(|| black_box(png::encode(&img, png::PngOptions::default())))
    });
    g.bench_function("decode_160x120", |b| {
        b.iter(|| black_box(png::decode(&encoded).unwrap()))
    });
    g.finish();
}

fn bench_mng(c: &mut Criterion) {
    let anim = synth::animation(96, 72, 8, 21);
    let mut g = c.benchmark_group("mng");
    g.bench_function("encode_8_frames", |b| b.iter(|| black_box(mng::encode(&anim))));
    let encoded = mng::encode(&anim);
    g.bench_function("decode_8_frames", |b| {
        b.iter(|| black_box(mng::decode(&encoded).unwrap()))
    });
    g.finish();
}

fn bench_conversion(c: &mut Criterion) {
    let site = webcontent::microscape::site();
    let mut g = c.benchmark_group("conversion");
    g.sample_size(10);
    g.bench_function("whole_site_gif_to_png_mng", |b| {
        b.iter(|| black_box(convert::convert_site(&site.images)))
    });
    g.finish();
}

fn bench_html(c: &mut Criterion) {
    let site = webcontent::microscape::site();
    let mut g = c.benchmark_group("html");
    g.throughput(Throughput::Bytes(site.html.len() as u64));
    g.bench_function("tokenize_42k", |b| {
        b.iter(|| black_box(html::tokenize(&site.html)))
    });
    g.bench_function("image_sources_42k", |b| {
        b.iter(|| black_box(html::inline_image_sources(&site.html)))
    });
    g.bench_function("lowercase_rewrite_42k", |b| {
        b.iter(|| black_box(html::rewrite_tag_case(&site.html, false)))
    });
    g.bench_function("css_analysis", |b| b.iter(|| black_box(site.css_analysis())));
    g.finish();
}

criterion_group!(
    benches,
    bench_gif,
    bench_png,
    bench_mng,
    bench_conversion,
    bench_html
);
criterion_main!(benches);
