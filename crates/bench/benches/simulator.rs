//! Benchmarks of the simulation substrate itself: raw event throughput of
//! the TCP machine over the three link models, and the modem compressor.

use httpipe_bench::{bench_throughput, group};
use netsim::sim::{App, AppEvent, Ctx};
use netsim::{LinkConfig, ModemCompressor, Simulator, SockAddr};

/// Minimal bulk-transfer pair used to stress the TCP path.
struct Sender {
    server: SockAddr,
    total: usize,
    sent: usize,
}

impl App for Sender {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: AppEvent) {
        match ev {
            AppEvent::Start => {
                ctx.connect(self.server);
            }
            AppEvent::Connected(s) | AppEvent::SendSpace(s) => {
                while self.sent < self.total {
                    let n = ctx.send(s, &[0xAB; 4096][..4096.min(self.total - self.sent)]);
                    if n == 0 {
                        return;
                    }
                    self.sent += n;
                }
                ctx.shutdown_write(s);
            }
            _ => {}
        }
    }
}

struct Sink;

impl App for Sink {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: AppEvent) {
        match ev {
            AppEvent::Start => ctx.listen(80),
            AppEvent::Readable(s) => {
                let _ = ctx.recv(s, usize::MAX);
            }
            AppEvent::PeerFin(s) => ctx.shutdown_write(s),
            _ => {}
        }
    }
}

fn bulk_transfer(link: LinkConfig, bytes: usize) -> u64 {
    let mut sim = Simulator::new();
    let client = sim.add_host("client");
    let server = sim.add_host("server");
    sim.add_link(client, server, link);
    sim.install_app(server, Box::new(Sink));
    sim.install_app(
        client,
        Box::new(Sender {
            server: SockAddr::new(server, 80),
            total: bytes,
            sent: 0,
        }),
    );
    sim.run_until_idle()
}

fn bench_bulk() {
    group("tcp_bulk_1mb");
    for (name, link) in [
        ("lan", LinkConfig::lan()),
        ("wan", LinkConfig::wan()),
        ("lossy_lan", LinkConfig::lan().with_drop_every(97)),
    ] {
        bench_throughput(name, 1 << 20, 20, || bulk_transfer(link.clone(), 1 << 20));
    }
}

fn bench_modem_codec() {
    let html = &webcontent::microscape::site().html;
    group("modem_lzw");
    bench_throughput("html_42k", html.len() as u64, 50, || {
        let mut lzw = netsim::modem::LzwSizer::new();
        lzw.push(html.as_bytes()) + lzw.finish()
    });
    let _ = ModemCompressor::new();
}

fn main() {
    bench_bulk();
    bench_modem_codec();
}
