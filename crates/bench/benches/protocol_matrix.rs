//! Criterion benches over the paper's protocol matrix (Tables 3–11) and
//! the operational studies (Nagle, connection management). Each bench
//! runs the full deterministic simulation of one table cell, so the
//! numbers are "time to simulate", while the *measured* packet/byte/
//! elapsed outputs are printed by `repro`.

use criterion::{criterion_group, criterion_main, Criterion};
use httpipe_core::env::NetEnv;
use httpipe_core::experiments::{browsers, closemgmt, nagle};
use httpipe_core::harness::{run_matrix_cell, ProtocolSetup, Scenario};
use httpserver::ServerKind;
use std::hint::black_box;

fn bench_matrix(c: &mut Criterion) {
    // Force one-time site generation outside the timing loops.
    let _ = webcontent::microscape::site();

    let mut g = c.benchmark_group("matrix");
    g.sample_size(10);
    for env in [NetEnv::Lan, NetEnv::Wan, NetEnv::Ppp] {
        for setup in [
            ProtocolSetup::Http10,
            ProtocolSetup::Http11,
            ProtocolSetup::Http11Pipelined,
            ProtocolSetup::Http11PipelinedDeflate,
        ] {
            if env == NetEnv::Ppp && setup == ProtocolSetup::Http10 {
                continue; // Tables 8/9 omit HTTP/1.0, as the paper does
            }
            for scenario in [Scenario::FirstTime, Scenario::Revalidate] {
                let id = format!(
                    "{}/{}/{}",
                    env.name(),
                    setup.label().replace(' ', "_"),
                    match scenario {
                        Scenario::FirstTime => "first",
                        Scenario::Revalidate => "reval",
                    }
                );
                g.bench_function(&id, |b| {
                    b.iter(|| {
                        black_box(run_matrix_cell(
                            env,
                            ServerKind::Apache,
                            setup,
                            scenario,
                        ))
                    })
                });
            }
        }
    }
    g.finish();
}

fn bench_browsers(c: &mut Criterion) {
    let _ = webcontent::microscape::site();
    let mut g = c.benchmark_group("browsers");
    g.sample_size(10);
    for b_kind in [browsers::Browser::Navigator, browsers::Browser::Explorer] {
        g.bench_function(format!("{}/reval", b_kind.label().replace(' ', "_")), |b| {
            b.iter(|| black_box(browsers::run_browser_cell(b_kind, ServerKind::Apache, false)))
        });
    }
    g.finish();
}

fn bench_operational(c: &mut Criterion) {
    let _ = webcontent::microscape::site();
    let mut g = c.benchmark_group("operational");
    g.sample_size(10);
    g.bench_function("nagle/worst_case", |b| {
        b.iter(|| {
            black_box(nagle::run_nagle_cell(
                NetEnv::Lan,
                nagle::NagleCase {
                    nodelay: false,
                    buffered: false,
                },
            ))
        })
    });
    g.bench_function("close/naive_rst_recovery", |b| {
        b.iter(|| black_box(closemgmt::run_close_cell(NetEnv::Lan, 5, true)))
    });
    g.finish();
}

criterion_group!(benches, bench_matrix, bench_browsers, bench_operational);
criterion_main!(benches);
