//! Wall-clock benches over the paper's protocol matrix (Tables 3–11) and
//! the operational studies (Nagle, connection management). Each bench
//! runs the full deterministic simulation of one table cell, so the
//! numbers are "time to simulate", while the *measured* packet/byte/
//! elapsed outputs are printed by `repro`.

use httpipe_bench::{bench_fn, group};
use httpipe_core::env::NetEnv;
use httpipe_core::experiments::{browsers, closemgmt, nagle};
use httpipe_core::harness::{run_matrix_cell, ProtocolSetup, Scenario};
use httpserver::ServerKind;

fn bench_matrix() {
    // Force one-time site generation outside the timing loops.
    let _ = webcontent::microscape::site();

    group("matrix");
    for env in [NetEnv::Lan, NetEnv::Wan, NetEnv::Ppp] {
        for setup in [
            ProtocolSetup::Http10,
            ProtocolSetup::Http11,
            ProtocolSetup::Http11Pipelined,
            ProtocolSetup::Http11PipelinedDeflate,
        ] {
            if env == NetEnv::Ppp && setup == ProtocolSetup::Http10 {
                continue; // Tables 8/9 omit HTTP/1.0, as the paper does
            }
            for scenario in [Scenario::FirstTime, Scenario::Revalidate] {
                let id = format!(
                    "{}/{}/{}",
                    env.name(),
                    setup.label().replace(' ', "_"),
                    match scenario {
                        Scenario::FirstTime => "first",
                        Scenario::Revalidate => "reval",
                    }
                );
                bench_fn(&id, 10, || {
                    run_matrix_cell(env, ServerKind::Apache, setup, scenario)
                });
            }
        }
    }
}

fn bench_browsers() {
    let _ = webcontent::microscape::site();
    group("browsers");
    for b_kind in [browsers::Browser::Navigator, browsers::Browser::Explorer] {
        bench_fn(
            &format!("{}/reval", b_kind.label().replace(' ', "_")),
            10,
            || browsers::run_browser_cell(b_kind, ServerKind::Apache, false),
        );
    }
}

fn bench_operational() {
    let _ = webcontent::microscape::site();
    group("operational");
    bench_fn("nagle/worst_case", 10, || {
        nagle::run_nagle_cell(
            NetEnv::Lan,
            nagle::NagleCase {
                nodelay: false,
                buffered: false,
            },
        )
    });
    bench_fn("close/naive_rst_recovery", 10, || {
        closemgmt::run_close_cell(NetEnv::Lan, 5, true)
    });
}

fn main() {
    bench_matrix();
    bench_browsers();
    bench_operational();
}
