//! Benchmarks of the from-scratch DEFLATE implementation on the paper's
//! HTML corpus: compression at each level, decompression, and the
//! prefix-decode path used by the streaming client.

use flate::{deflate, inflate, Level};
use httpipe_bench::{bench_throughput, group};

fn corpus() -> &'static str {
    &webcontent::microscape::site().html
}

fn bench_deflate() {
    let html = corpus();
    group("deflate_html");
    for (name, level) in [
        ("store", Level::Store),
        ("fast", Level::Fast),
        ("default", Level::Default),
        ("best", Level::Best),
    ] {
        bench_throughput(name, html.len() as u64, 50, || {
            deflate(html.as_bytes(), level)
        });
    }
}

fn bench_inflate() {
    let html = corpus();
    let compressed = deflate(html.as_bytes(), Level::Default);
    group("inflate_html");
    bench_throughput("full", html.len() as u64, 100, || {
        inflate(&compressed).unwrap()
    });
    let half = &compressed[..compressed.len() / 2];
    bench_throughput("prefix_half", html.len() as u64, 100, || {
        flate::inflate::inflate_prefix(half).unwrap()
    });
}

fn bench_zlib() {
    let html = corpus();
    group("zlib_html");
    bench_throughput("compress_default", html.len() as u64, 50, || {
        flate::zlib::compress(html.as_bytes(), Level::Default)
    });
    let z = flate::zlib::compress(html.as_bytes(), Level::Default);
    bench_throughput("decompress", html.len() as u64, 100, || {
        flate::zlib::decompress(&z).unwrap()
    });
}

fn main() {
    bench_deflate();
    bench_inflate();
    bench_zlib();
}
