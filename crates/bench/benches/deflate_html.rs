//! Benchmarks of the from-scratch DEFLATE implementation on the paper's
//! HTML corpus: compression at each level, decompression, and the
//! prefix-decode path used by the streaming client.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use flate::{deflate, inflate, Level};
use std::hint::black_box;

fn corpus() -> &'static str {
    &webcontent::microscape::site().html
}

fn bench_deflate(c: &mut Criterion) {
    let html = corpus();
    let mut g = c.benchmark_group("deflate_html");
    g.throughput(Throughput::Bytes(html.len() as u64));
    for (name, level) in [
        ("store", Level::Store),
        ("fast", Level::Fast),
        ("default", Level::Default),
        ("best", Level::Best),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| black_box(deflate(html.as_bytes(), level)))
        });
    }
    g.finish();
}

fn bench_inflate(c: &mut Criterion) {
    let html = corpus();
    let compressed = deflate(html.as_bytes(), Level::Default);
    let mut g = c.benchmark_group("inflate_html");
    g.throughput(Throughput::Bytes(html.len() as u64));
    g.bench_function("full", |b| b.iter(|| black_box(inflate(&compressed).unwrap())));
    g.bench_function("prefix_half", |b| {
        let half = &compressed[..compressed.len() / 2];
        b.iter(|| black_box(flate::inflate::inflate_prefix(half).unwrap()))
    });
    g.finish();
}

fn bench_zlib(c: &mut Criterion) {
    let html = corpus();
    let mut g = c.benchmark_group("zlib_html");
    g.throughput(Throughput::Bytes(html.len() as u64));
    g.bench_function("compress_default", |b| {
        b.iter(|| black_box(flate::zlib::compress(html.as_bytes(), Level::Default)))
    });
    let z = flate::zlib::compress(html.as_bytes(), Level::Default);
    g.bench_function("decompress", |b| {
        b.iter(|| black_box(flate::zlib::decompress(&z).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench_deflate, bench_inflate, bench_zlib);
criterion_main!(benches);
