//! Shared helpers for the benchmark targets. The entry points are the
//! plain wall-clock benches in `benches/` (the build environment has no
//! crates.io access, so Criterion is unavailable) and the `repro` binary,
//! which regenerates every table and figure of the paper.

use std::time::{Duration, Instant};

/// Crate marker; see `benches/` and `src/bin/repro.rs`.
pub const ABOUT: &str = "benchmarks and table reproduction for the SIGCOMM '97 HTTP/1.1 study";

/// One timed benchmark result.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Iterations actually timed.
    pub iters: u32,
    /// Mean wall-clock time per iteration.
    pub mean: Duration,
    /// Fastest single iteration.
    pub min: Duration,
}

impl Measurement {
    /// Mean throughput for `bytes` processed per iteration, in MB/s.
    pub fn mb_per_sec(&self, bytes: u64) -> f64 {
        let secs = self.mean.as_secs_f64();
        if secs == 0.0 {
            return f64::INFINITY;
        }
        bytes as f64 / secs / 1_000_000.0
    }
}

/// Time `f` and report per-iteration statistics, Criterion-style but
/// minimal: one warm-up call, then up to `max_iters` iterations or
/// ~`budget` of wall clock, whichever comes first.
// Host-clock timing is the product here, not simulation state. simlint: allow(wall-clock)
pub fn bench_fn<T>(name: &str, max_iters: u32, mut f: impl FnMut() -> T) -> Measurement {
    // Warm-up (also forces lazy statics to initialise outside timing).
    std::hint::black_box(f());
    let budget = Duration::from_millis(500);
    let start = Instant::now();
    let mut iters = 0u32;
    let mut total = Duration::ZERO;
    let mut min = Duration::MAX;
    while iters < max_iters && start.elapsed() < budget {
        let t0 = Instant::now();
        std::hint::black_box(f());
        let dt = t0.elapsed();
        total += dt;
        min = min.min(dt);
        iters += 1;
    }
    let m = Measurement {
        iters,
        mean: total / iters.max(1),
        min,
    };
    println!(
        "{name:<44} {:>10.3?} mean  {:>10.3?} min  ({} iters)",
        m.mean, m.min, m.iters
    );
    m
}

/// `bench_fn` plus a throughput line for `bytes` processed per iteration.
pub fn bench_throughput<T>(
    name: &str,
    bytes: u64,
    max_iters: u32,
    f: impl FnMut() -> T,
) -> Measurement {
    let m = bench_fn(name, max_iters, f);
    println!("{name:<44} {:>10.1} MB/s", m.mb_per_sec(bytes));
    m
}

/// Print a group header, Criterion-group style.
pub fn group(name: &str) {
    println!("\n== {name} ==");
}
