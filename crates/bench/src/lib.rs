//! Shared helpers for the benchmark targets. The real entry points are
//! the Criterion benches in `benches/` and the `repro` binary, which
//! regenerates every table and figure of the paper.

/// Crate marker; see `benches/` and `src/bin/repro.rs`.
pub const ABOUT: &str = "benchmarks and table reproduction for the SIGCOMM '97 HTTP/1.1 study";
