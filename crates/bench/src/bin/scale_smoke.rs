//! `scale_smoke` — CI determinism gate for the many-client fleet engine.
//!
//! Runs the reduced scale grid (LAN+WAN × three setups × N ∈ {1, 16, 64})
//! twice through the fleet executor (thread count from `HTTPIPE_THREADS`,
//! as in CI) and asserts that both passes render bit-identical reports.
//! Any nondeterminism in the shared-link round-robin scheduler, the
//! listen-queue accounting or the fleet thread pool shows up as a digest
//! mismatch and a nonzero exit.
//!
//! ```text
//! HTTPIPE_THREADS=8 cargo run --release -p httpipe-bench --bin scale_smoke
//! ```

use httpipe_core::experiments::scale::{self, ScaleCell};
use httpipe_core::harness::worker_threads;
use std::time::Instant;

// Wall-clock progress reporting for the smoke harness. simlint: allow(wall-clock)
fn main() {
    let points = scale::reduced_grid();
    let threads = worker_threads(points.len());
    println!(
        "scale smoke: {} fleet cells, {} worker threads, 2 passes",
        points.len(),
        threads
    );

    let start = Instant::now();
    let first = scale::run_points(&points);
    let first_digest = scale::report_digest(&first);
    let second = scale::run_points(&points);
    let second_digest = scale::report_digest(&second);
    let secs = start.elapsed().as_secs_f64();

    for (a, b) in first.iter().zip(&second) {
        assert_eq!(a.point, b.point);
        assert_eq!(
            a.client_secs, b.client_secs,
            "nondeterministic fleet cell {:?}",
            a.point
        );
    }
    assert_eq!(
        first_digest, second_digest,
        "report digests differ between passes"
    );

    // The contended cells really contend: at N=64 the fleet's slowest
    // client is slower than an uncontended single client of the same
    // setup, yet everyone finishes the whole site.
    let find = |n: usize, cell: &ScaleCell| -> bool { cell.point.n_clients == n };
    for big in first.iter().filter(|c| find(64, c)) {
        let lone = first
            .iter()
            .find(|c| {
                c.point.env == big.point.env && c.point.setup == big.point.setup && find(1, c)
            })
            .expect("N=1 anchor present");
        assert!(
            big.p99 > lone.p50,
            "{:?}: 64 contending clients no slower than one",
            big.point
        );
        assert_eq!(
            big.fetched,
            64 * lone.fetched,
            "{:?}: some client fell short of the full site",
            big.point
        );
    }

    println!("  digest {first_digest:#018x} on both passes ({secs:.2}s total)");
    println!("scale smoke: OK");
}
