//! Generate `EXPERIMENTS.md`: run every reproduced experiment and record
//! paper-published versus measured values side by side.
//!
//! ```text
//! cargo run --release -p httpipe-bench --bin experiments_md > EXPERIMENTS.md
//! ```

use httpipe_core::env::NetEnv;
use httpipe_core::experiments::{
    ablations, browsers, cc, closemgmt, compression, content, mux, nagle, probe, protocol_matrix,
    ranges, robustness, scale, summary, telemetry, verbosity,
};
use httpipe_core::harness::ProtocolSetup;
use httpipe_core::result::CellResult;
use httpserver::ServerKind;

/// Paper values for one protocol row of Tables 4–9:
/// (FT Pa, FT Bytes, FT Sec, CV Pa, CV Bytes, CV Sec).
type PaperRow = (f64, f64, f64, f64, f64, f64);

fn paper_matrix(env: NetEnv, server: ServerKind) -> Vec<(ProtocolSetup, PaperRow)> {
    use ProtocolSetup::*;
    match (env, server) {
        (NetEnv::Lan, ServerKind::Jigsaw) => vec![
            (Http10, (510.2, 216_289.0, 0.97, 374.8, 61_117.0, 0.78)),
            (Http11, (281.0, 191_843.0, 1.25, 133.4, 17_694.0, 0.89)),
            (
                Http11Pipelined,
                (181.8, 191_551.0, 0.68, 32.8, 17_694.0, 0.54),
            ),
            (
                Http11PipelinedDeflate,
                (148.8, 159_654.0, 0.71, 32.6, 17_687.0, 0.54),
            ),
        ],
        (NetEnv::Lan, ServerKind::Apache) => vec![
            (Http10, (489.4, 215_536.0, 0.72, 365.4, 60_605.0, 0.41)),
            (Http11, (244.2, 189_023.0, 0.81, 98.4, 14_009.0, 0.40)),
            (
                Http11Pipelined,
                (175.8, 189_607.0, 0.49, 29.2, 14_009.0, 0.23),
            ),
            (
                Http11PipelinedDeflate,
                (139.8, 156_834.0, 0.41, 28.4, 14_002.0, 0.23),
            ),
        ],
        (NetEnv::Wan, ServerKind::Jigsaw) => vec![
            (Http10, (565.8, 251_913.0, 4.17, 389.2, 62_348.0, 2.96)),
            (Http11, (304.0, 193_595.0, 6.64, 137.0, 18_065.6, 4.95)),
            (
                Http11Pipelined,
                (214.2, 193_887.0, 2.33, 34.8, 18_233.2, 1.10),
            ),
            (
                Http11PipelinedDeflate,
                (183.2, 161_698.0, 2.09, 35.4, 19_102.2, 1.15),
            ),
        ],
        (NetEnv::Wan, ServerKind::Apache) => vec![
            (Http10, (559.6, 248_655.2, 4.09, 370.0, 61_887.0, 2.64)),
            (Http11, (309.4, 191_436.0, 6.14, 104.2, 14_255.0, 4.43)),
            (
                Http11Pipelined,
                (221.4, 191_180.6, 2.23, 29.8, 15_352.0, 0.86),
            ),
            (
                Http11PipelinedDeflate,
                (182.0, 159_170.0, 2.11, 29.0, 15_088.0, 0.83),
            ),
        ],
        (NetEnv::Ppp, ServerKind::Jigsaw) => vec![
            (Http11, (309.6, 190_687.0, 63.8, 89.2, 17_528.0, 12.9)),
            (
                Http11Pipelined,
                (284.4, 190_735.0, 53.3, 31.0, 17_598.0, 5.4),
            ),
            (
                Http11PipelinedDeflate,
                (234.2, 159_449.0, 47.4, 31.0, 17_591.0, 5.4),
            ),
        ],
        (NetEnv::Ppp, ServerKind::Apache) => vec![
            (Http11, (308.6, 187_869.0, 65.6, 89.0, 13_843.0, 11.1)),
            (
                Http11Pipelined,
                (281.4, 187_918.0, 53.4, 26.0, 13_912.0, 3.4),
            ),
            (
                Http11PipelinedDeflate,
                (233.0, 157_214.0, 47.2, 26.0, 13_905.0, 3.4),
            ),
        ],
    }
}

fn row(label: &str, paper: &[String], measured: &[String]) -> String {
    format!(
        "| {} | {} | {} |\n",
        label,
        paper.join(" / "),
        measured.join(" / ")
    )
}

fn fmt_cell_triplet(pa: f64, bytes: f64, secs: f64) -> Vec<String> {
    vec![
        format!("{pa:.0}"),
        format!("{bytes:.0}"),
        format!("{secs:.2}"),
    ]
}

fn fmt_measured(c: &CellResult) -> Vec<String> {
    vec![
        format!("{}", c.packets()),
        format!("{}", c.bytes),
        format!("{:.2}", c.secs),
    ]
}

fn main() {
    let mut out = String::new();
    out.push_str(
        "# EXPERIMENTS — paper vs measured\n\n\
         Every table and figure of *Network Performance Effects of HTTP/1.1, CSS1,\n\
         and PNG* (SIGCOMM '97), reproduced by deterministic simulation. Regenerate\n\
         any entry with `cargo run --release -p httpipe-bench --bin repro -- <id>`;\n\
         regenerate this file with `... --bin experiments_md > EXPERIMENTS.md`.\n\n\
         The goal is *shape*, not absolute equality: orderings, crossovers and\n\
         rough factors. The paper measured real 1997 hosts over the live Internet\n\
         (5-run averages, hence fractional packets); we measure one deterministic\n\
         run of a simulated TCP whose mechanics — connection setup/teardown, slow\n\
         start, delayed ACKs, Nagle, buffering, service times — are the quantities\n\
         that drive the published numbers.\n\n",
    );

    // ---- Table 3 ----------------------------------------------------
    out.push_str("## Table 3 — initial (untuned) LAN revalidation, Jigsaw (`repro table3`)\n\n");
    out.push_str("| Row | Paper (sockets / packets / secs) | Measured |\n|---|---|---|\n");
    let paper3: [(&str, (u64, u64, f64)); 3] = [
        ("HTTP/1.0", (40, 497, 1.85)),
        ("HTTP/1.1 persistent", (1, 223, 4.13)),
        ("HTTP/1.1 pipelined (untuned)", (1, 83, 3.02)),
    ];
    for (rowdata, (label, (socks, pkts, secs))) in
        protocol_matrix::table3_cells().iter().zip(paper3)
    {
        out.push_str(&row(
            label,
            &[socks.to_string(), pkts.to_string(), format!("{secs:.2}")],
            &[
                rowdata.cell.sockets_used.to_string(),
                rowdata.cell.packets().to_string(),
                format!("{:.2}", rowdata.cell.secs),
            ],
        ));
    }
    out.push_str(
        "\nShape reproduced: dramatic packet savings from persistence and again from\n\
         pipelining, while *elapsed time* inverts — the serialized client and the\n\
         untuned pipeline (1 s flush timer, disk-backed cache) lose to HTTP/1.0.\n\
         Our persistent row shows fewer packets than the paper's 223 because our\n\
         initial server already buffers each response into one segment.\n\n",
    );

    // ---- Tables 4-9 --------------------------------------------------
    for env in [NetEnv::Lan, NetEnv::Wan, NetEnv::Ppp] {
        for server in [ServerKind::Jigsaw, ServerKind::Apache] {
            let n = protocol_matrix::table_number(env, server);
            let sname = match server {
                ServerKind::Jigsaw => "Jigsaw",
                ServerKind::Apache => "Apache",
            };
            out.push_str(&format!(
                "## Table {n} — {sname}, {} (`repro table{n}`)\n\n",
                env.channel()
            ));
            let paper = paper_matrix(env, server);
            let cells = protocol_matrix::matrix_cells(env, server);
            assert_eq!(paper.len(), cells.len());
            out.push_str("### First-time retrieval (Pa / Bytes / Sec)\n\n");
            out.push_str("| Protocol | Paper | Measured |\n|---|---|---|\n");
            for ((setup, (fpa, fby, fse, _, _, _)), (label, first, _)) in
                paper.iter().zip(cells.iter())
            {
                assert_eq!(setup.label(), *label);
                out.push_str(&row(
                    setup.label(),
                    &fmt_cell_triplet(*fpa, *fby, *fse),
                    &fmt_measured(first),
                ));
            }
            out.push_str("\n### Cache validation (Pa / Bytes / Sec)\n\n");
            out.push_str("| Protocol | Paper | Measured |\n|---|---|---|\n");
            for ((setup, (_, _, _, cpa, cby, cse)), (_, _, reval)) in paper.iter().zip(cells.iter())
            {
                out.push_str(&row(
                    setup.label(),
                    &fmt_cell_triplet(*cpa, *cby, *cse),
                    &fmt_measured(reval),
                ));
            }
            out.push('\n');
        }
    }

    // ---- Tables 10/11 ------------------------------------------------
    for server in [ServerKind::Jigsaw, ServerKind::Apache] {
        let (n, sname, paper): (u8, &str, [(&str, PaperRow); 2]) = match server {
            ServerKind::Jigsaw => (
                10,
                "Jigsaw",
                [
                    (
                        "Netscape Navigator",
                        (339.4, 201_807.0, 58.8, 108.0, 19_282.0, 14.9),
                    ),
                    (
                        "Internet Explorer",
                        (360.3, 199_934.0, 63.0, 301.0, 61_009.0, 17.0),
                    ),
                ],
            ),
            ServerKind::Apache => (
                11,
                "Apache",
                [
                    (
                        "Netscape Navigator",
                        (334.3, 199_243.0, 58.7, 103.3, 23_741.0, 5.9),
                    ),
                    (
                        "Internet Explorer",
                        (381.3, 204_219.0, 60.6, 117.0, 23_056.0, 8.3),
                    ),
                ],
            ),
        };
        out.push_str(&format!(
            "## Table {n} — {sname}, browsers over PPP (`repro table{n}`)\n\n"
        ));
        out.push_str("| Browser / scenario | Paper | Measured |\n|---|---|---|\n");
        let cells = browsers::browser_cells(server);
        for ((b, first, reval), (label, p)) in cells.iter().zip(paper.iter()) {
            let _ = b;
            out.push_str(&row(
                &format!("{label} — first time"),
                &fmt_cell_triplet(p.0, p.1, p.2),
                &fmt_measured(first),
            ));
            out.push_str(&row(
                &format!("{label} — revalidation"),
                &fmt_cell_triplet(p.3, p.4, p.5),
                &fmt_measured(reval),
            ));
        }
        if n == 10 {
            out.push_str(
                "\nNot reproduced: the paper's Table 10 IE-vs-Jigsaw revalidation anomaly\n\
                 (301 packets / 61 009 bytes) came from an IE/Jigsaw validator\n\
                 incompatibility that re-transferred the images; we model IE's common\n\
                 behaviour (unconditional page GET + conditional image GETs), which is\n\
                 what its Apache row shows.\n",
            );
        }
        out.push('\n');
    }

    // ---- Modem compression -------------------------------------------
    out.push_str("## §8.2.1 — deflate vs V.42bis modem compression (`repro modem`)\n\n");
    out.push_str("| Case | Paper (Pa / Sec, Apache) | Measured |\n|---|---|---|\n");
    let (plain, deflated) = compression::modem_cells(ServerKind::Apache);
    out.push_str(&row(
        "Uncompressed HTML",
        &["67".into(), "12.13".into()],
        &[plain.packets().to_string(), format!("{:.2}", plain.secs)],
    ));
    out.push_str(&row(
        "Compressed HTML",
        &["21".into(), "4.43".into()],
        &[
            deflated.packets().to_string(),
            format!("{:.2}", deflated.secs),
        ],
    ));
    out.push_str(&row(
        "Saved",
        &["68.7%".into(), "64.5%".into()],
        &[
            format!(
                "{:.1}%",
                (1.0 - deflated.packets() as f64 / plain.packets() as f64) * 100.0
            ),
            format!("{:.1}%", (1.0 - deflated.secs / plain.secs) * 100.0),
        ],
    ));

    // ---- Deflate study -----------------------------------------------
    let d = compression::html_deflate_study();
    out.push_str("\n## HTML transport compression (`repro deflate`)\n\n");
    out.push_str("| Quantity | Paper | Measured |\n|---|---|---|\n");
    out.push_str(&row(
        "HTML compression",
        &["42K -> 11K (>3x)".into()],
        &[format!(
            "{} -> {} ({:.1}x)",
            d.html_bytes,
            d.deflated_bytes,
            d.html_bytes as f64 / d.deflated_bytes as f64
        )],
    ));
    out.push_str(&row(
        "Share of total payload",
        &["~19%".into()],
        &[format!("{:.1}%", d.payload_saving_pct)],
    ));
    out.push_str(&row(
        "Tag-case ratios (lower vs mixed)",
        &[".27 vs .35".into()],
        &[format!("{:.2} vs {:.2}", d.ratio_lowercase, d.ratio_mixed)],
    ));

    // ---- Figure 1 + CSS -----------------------------------------------
    let f = content::figure1();
    out.push_str("\n## Figure 1 + CSS analysis (`repro figure1 css`)\n\n");
    out.push_str("| Quantity | Paper | Measured |\n|---|---|---|\n");
    out.push_str(&row(
        "'solutions' GIF vs HTML+CSS",
        &["682 B vs ~150 B (>4x)".into()],
        &[format!(
            "{} B vs {} B ({:.1}x)",
            f.gif_bytes,
            f.replacement_bytes,
            f.gif_bytes as f64 / f.replacement_bytes as f64
        )],
    ));
    let site = webcontent::microscape::site();
    let analysis = site.css_analysis();
    out.push_str(&row(
        "Replaceable images / requests saved",
        &["'many' of 40".into()],
        &[format!(
            "{} of 42, {} bytes net",
            analysis.replaced_count(),
            analysis.bytes_saved()
        )],
    ));
    let (orig, conv) = content::css_browse_cells(true);
    out.push_str(&row(
        "End-to-end browse, PPP pipelined (Pa/Sec)",
        &["(not measured end-to-end in the paper)".into()],
        &[format!(
            "{}/{:.1}s -> {}/{:.1}s",
            orig.packets(),
            orig.secs,
            conv.packets(),
            conv.secs
        )],
    ));

    // ---- PNG/MNG ------------------------------------------------------
    let r = content::conversion_report();
    out.push_str("\n## GIF→PNG / GIF→MNG (`repro png`)\n\n");
    out.push_str("| Quantity | Paper | Measured |\n|---|---|---|\n");
    out.push_str(&row(
        "40 static GIFs -> PNG",
        &["103,299 -> 92,096 B (-11%)".into()],
        &[format!(
            "{} -> {} B ({:+.1}%)",
            r.static_gif_bytes,
            r.static_png_bytes,
            (r.static_png_bytes as f64 / r.static_gif_bytes as f64 - 1.0) * 100.0
        )],
    ));
    out.push_str(&row(
        "2 animations -> MNG",
        &["24,988 -> 16,329 B (-35%)".into()],
        &[format!(
            "{} -> {} B ({:+.1}%)",
            r.anim_gif_bytes,
            r.anim_mng_bytes,
            (r.anim_mng_bytes as f64 / r.anim_gif_bytes as f64 - 1.0) * 100.0
        )],
    ));
    out.push_str(&row(
        "Tiny images grow under PNG",
        &["'sub-200 byte category' grows".into()],
        &[format!("{} images grew", r.grew)],
    ));

    // ---- Nagle / close -------------------------------------------------
    out.push_str("\n## Nagle interaction (`repro nagle`)\n\n");
    out.push_str("| Case (Jigsaw, LAN revalidation) | Measured Pa / Sec |\n|---|---|\n");
    for (case, cell) in nagle::nagle_cells(NetEnv::Lan) {
        out.push_str(&format!(
            "| {} | {} / {:.3}s |\n",
            case.label(),
            cell.packets(),
            cell.secs
        ));
    }
    out.push_str(
        "\nPaper: the two buffering algorithms \"tend to interfere, and using them\n\
         together will often cause very significant performance degradation\" —\n\
         the buffered/Nagle-on row shows the ~200 ms delayed-ACK stall, and the\n\
         recommendation (TCP_NODELAY for buffered implementations) removes it.\n\
         The per-request rows show the flip side: Nagle exists precisely to\n\
         coalesce small writes, which is why the paper's *initial* tests saw no\n\
         problem until buffering strategies changed.\n",
    );

    out.push_str("\n## Connection management (`repro closerst`)\n\n");
    let (unlimited, graceful, naive) = closemgmt::close_study(NetEnv::Ppp, 5);
    out.push_str(
        "| Server behaviour | Pa | Sec | Conns | Retries | RSTs |\n|---|---|---|---|---|---|\n",
    );
    for (label, c) in [
        ("No request limit", &unlimited),
        ("Limit 5, independent half-close", &graceful.cell),
        ("Limit 5, naive close", &naive.cell),
    ] {
        out.push_str(&format!(
            "| {} | {} | {:.1} | {} | {} | {} |\n",
            label,
            c.packets(),
            c.secs,
            c.sockets_used,
            c.retries,
            c.resets
        ));
    }

    // ---- Ranges ----------------------------------------------------------
    out.push_str("\n## Poor man's multiplexing (`repro ranges`)\n\n");
    out.push_str(
        "The paper's §\"Range Requests and Validation\" idiom, exercised on a\n\
         *revised* site (every validator misses):\n\n",
    );
    out.push_str(
        "| Idiom (PPP, pipelined) | Pa | Bytes | Sec | Body bytes |\n|---|---|---|---|---|\n",
    );
    for idiom in [
        ranges::RevisitIdiom::FullOnChange,
        ranges::RevisitIdiom::RangeMetadata,
    ] {
        let c = ranges::run_revisit_cell(NetEnv::Ppp, idiom);
        out.push_str(&format!(
            "| {} | {} | {} | {:.1} | {} |\n",
            idiom.label(),
            c.packets(),
            c.bytes,
            c.secs,
            c.body_bytes
        ));
    }

    // ---- Verbosity --------------------------------------------------------
    out.push_str("\n## Request verbosity (`repro verbosity`)\n\n");
    out.push_str(
        "The future-work back-of-envelope: \"the actual number of bytes that\n\
         changes between requests can be as small as 10%\", suggesting 5-10x\n\
         headroom for a compact HTTP encoding.\n\n",
    );
    out.push_str(
        "| Profile | Total B | Changed | Deflated | Compaction |\n|---|---|---|---|---|\n",
    );
    for (label, style) in [
        ("libwww robot", httpclient::RequestStyle::Robot),
        ("Navigator", httpclient::RequestStyle::Navigator),
        ("MSIE", httpclient::RequestStyle::Explorer),
    ] {
        let s = verbosity::revalidation_request_study(style);
        out.push_str(&format!(
            "| {} | {} | {:.0}% | {} | {:.1}x |\n",
            label,
            s.total_bytes,
            s.change_fraction() * 100.0,
            s.deflated_bytes,
            s.compaction_factor()
        ));
    }

    // ---- Ablations --------------------------------------------------------
    out.push_str("\n## Design-choice ablations (`repro ablations`)\n\n");
    out.push_str("```\n");
    for t in ablations::ablation_tables() {
        out.push_str(&t.render());
        out.push('\n');
    }
    out.push_str("```\n");

    // ---- Summary --------------------------------------------------------
    let base = summary::baseline_cell();
    let all = summary::all_techniques_cell();
    out.push_str("\n## Back of the envelope (`repro summary`)\n\n");
    out.push_str("| Configuration | Paper | Measured |\n|---|---|---|\n");
    out.push_str(&row(
        "All techniques vs HTTP/1.0, modem download time",
        &["~60%".into()],
        &[format!("{:.0}%", all.secs / base.secs * 100.0)],
    ));

    // ---- Robustness under loss and jitter --------------------------------
    out.push_str("\n## Robustness under packet loss and jitter (`repro robustness`)\n\n");
    out.push_str(
        "Beyond the paper: the same protocol matrix (Apache) rerun over impaired\n\
         links — seeded-deterministic Bernoulli and Gilbert–Elliott (burst) loss\n\
         at 0.5/2/5%, plus a jitter/reordering study. `Infl%` is elapsed-time\n\
         inflation over the zero-loss row of the same protocol. The shape to\n\
         notice: pipelining concentrates the page on one TCP connection, so each\n\
         lost packet stalls *everything* behind it (head-of-line blocking) and\n\
         costs more inflation per drop than HTTP/1.0's four parallel connections\n\
         — yet at moderate loss rates pipelining still wins outright, because it\n\
         has far fewer packets to lose and no per-object handshake tax.\n\n",
    );
    out.push_str("```\n");
    let rob_cells = robustness::run_points(&robustness::full_grid());
    for t in robustness::report(&rob_cells) {
        out.push_str(&t.render());
        out.push('\n');
    }
    out.push_str(&robustness::jitter_table(&robustness::jitter_study()).render());
    out.push_str("```\n");
    out.push_str(&format!(
        "\nReport digest (two identical runs required by CI's robustness-smoke\n\
         gate): `{:#018x}`.\n",
        robustness::report_digest(&rob_cells)
    ));

    // ---- Many-client scale -----------------------------------------------
    out.push_str("\n## Many-client scale (`repro scale`)\n\n");
    out.push_str(
        "Beyond the paper: the argument for HTTP/1.1 was always *server*\n\
         scalability, but the paper measures one robot on a private link. Here\n\
         N robots share one bottleneck against one Apache (64-deep listen\n\
         queue, bounded link buffer), every client fetching the site first\n\
         time. Columns: per-client elapsed-time percentiles, Jain's fairness\n\
         index over per-client times, the server's peak simultaneous\n\
         connection count, SYNs dropped at the listen queue, and aggregate\n\
         packets/retransmissions. The shape to notice: HTTP/1.0×4's peak\n\
         connection count scales ~4N while persistent and pipelined hold ~N,\n\
         so pipelining carries 256 clients with several times less server\n\
         state — and the 256-client SYN burst is the only place the listen\n\
         queue overflows.\n\n",
    );
    out.push_str("```\n");
    let scale_cells = scale::run_points(&scale::full_grid());
    for t in scale::report(&scale_cells) {
        out.push_str(&t.render());
        out.push('\n');
    }
    out.push_str("```\n");
    out.push_str(&format!(
        "\nReport digest (two identical runs of the reduced grid required by\n\
         CI's scale-smoke gate): `{:#018x}`.\n",
        scale::report_digest(&scale_cells)
    ));

    // ---- Where the time goes ---------------------------------------------
    out.push_str("\n## Where the time goes (`diagnose`)\n\n");
    out.push_str(
        "Beyond the paper: the elapsed-time columns above, decomposed by cause.\n\
         The paper explained its timings by hand from tcpdump output; the\n\
         `netsim::probe` flight recorder automates that analysis, attributing\n\
         every wall-clock nanosecond of a run to exactly one of nine causes —\n\
         connection setup, slow-start/RTT waits, Nagle holds, delayed-ACK\n\
         waits, RTO recovery, receiver-window backpressure, server think time,\n\
         wire serialization, or idle — so the buckets sum to the elapsed time\n\
         (`Sum` = `Sec` on every row). The shape to notice: the WAN rows are\n\
         dominated by connection setup + slow start (exactly the paper's case\n\
         for persistence and pipelining), while PPP is wire-serialization\n\
         bound, which is why compression is the only lever that helps there.\n\
         The PPP HTTP/1.0 row also books real RTO time: four parallel\n\
         connections push the modem's queueing delay past the 3 s initial\n\
         RTO, a spurious-retransmission regime the single-connection setups\n\
         never enter (one more reason the paper dropped that row).\n\
         Full per-request timelines and machine-readable `PROBE_*.json`\n\
         documents come from `cargo run --release -p httpipe-bench --bin\n\
         diagnose`.\n\n",
    );
    out.push_str("```\n");
    let probe_cells = probe::run_points(&probe::canonical_grid());
    out.push_str(&probe::report(&probe_cells).render());
    out.push_str("```\n");
    out.push_str(&format!(
        "\nReport digest (two identical runs of the reduced grid required by\n\
         CI's diagnose-smoke gate): `{:#018x}`.\n",
        probe::report_digest(&probe_cells)
    ));

    // ---- Multiplexing and server push ------------------------------------
    out.push_str("\n## Multiplexing and server push (`repro mux`)\n\n");
    out.push_str(
        "Beyond the paper, twenty years forward: a binary-framed multiplexed\n\
         transport (HEADERS / DATA / SETTINGS / WINDOW_UPDATE / RST_STREAM /\n\
         PUSH_PROMISE over one connection, HTTP/2-style but simplified — see\n\
         DESIGN.md) joins HTTP/1.0\u{d7}4, persistent and pipelined as a fourth\n\
         setup, with an optional server push policy (inline images and CSS\n\
         discovered in served HTML are pushed alongside it). `FT`/`CV`\n\
         columns are the first-time and cache-validation scenarios; `PushB`\n\
         is pushed payload bytes. The shapes to notice: on the unimpaired\n\
         matrix mux tracks pipelining closely (framing overhead is noise)\n\
         and push pays only on first-time retrieval, where it collapses the\n\
         HTML-parse discovery round trip; under loss the single multiplexed\n\
         connection shares fate — every stream stalls behind each drop, so\n\
         its elapsed-time inflation exceeds HTTP/1.0\u{d7}4's at 2%+ loss in\n\
         the shared-fate tables (the SPDY-era finding, and the gated\n\
         `shared_fate_mux_degrades_more_than_parallel_connections` test);\n\
         and in fleets one connection per client holds server state at ~N\n\
         while matching pipelining's aggregate packet economy.\n\n",
    );
    out.push_str("```\n");
    for env in [NetEnv::Lan, NetEnv::Wan, NetEnv::Ppp] {
        for server in [ServerKind::Jigsaw, ServerKind::Apache] {
            out.push_str(&mux::matrix_table(env, server).render());
            out.push('\n');
        }
    }
    let mux_loss = robustness::run_points(&mux::loss_grid());
    for t in robustness::report(&mux_loss) {
        out.push_str(&t.render());
        out.push('\n');
    }
    for env in [NetEnv::Lan, NetEnv::Wan, NetEnv::Ppp] {
        out.push_str(&mux::shared_fate_table(&mux_loss, env).render());
        out.push('\n');
    }
    let mux_fleets = scale::run_points(&mux::fleet_grid());
    for t in scale::report(&mux_fleets) {
        out.push_str(&t.render());
        out.push('\n');
    }
    let mux_probes = probe::run_points(&mux::probe_grid());
    out.push_str(&probe::report(&mux_probes).render());
    out.push_str("```\n");
    let mux_reduced = mux::reduced_report();
    out.push_str(&format!(
        "\nReport digest (two identical runs of the reduced grid required by\n\
         CI's mux-smoke gate): `{:#018x}`.\n",
        mux::report_digest(&mux_reduced)
    ));

    // ---- Congestion-control sensitivity ----------------------------------
    out.push_str("\n## Recovery matters (`repro cc`)\n\n");
    out.push_str(
        "Beyond the paper: every loss number above was measured under exactly\n\
         one loss-recovery algorithm \u{2014} the Reno-style slow start + fast\n\
         retransmit of 1997 stacks. Here the WAN first-time loss grid reruns\n\
         under four pluggable `CongestionControl` variants on both endpoints:\n\
         Reno (RFC 5681, bit-identical to the seed and digest-gated), NewReno\n\
         (RFC 6582 partial-ACK recovery with window inflation), SACK\n\
         (RFC 2018/6675 scoreboard \u{2014} holes only, never data the peer\n\
         already holds) and a CUBIC-shaped grower on integer sim-time\n\
         (RFC 8312, \u{3b2} = 0.7). Every variant at a coordinate faces the\n\
         identical impairment draw sequence, so differences are recovery\n\
         behavior, not luck. The shape to notice: recovery sophistication\n\
         pays precisely where the paper's preferred transport concentrates\n\
         traffic \u{2014} on HTTP/1.0's four short parallel connections the\n\
         fast-retransmit variants are indistinguishable, while on the single\n\
         pipelined connection NewReno/SACK cut Reno's inflation from +355%\n\
         to +211% at 2% loss and to a quarter at 5% (the `cc_gate`\n\
         ordering) by filling holes on partial ACKs\n\
         instead of stalling into retransmission timeouts \u{2014} the probe\n\
         decomposition below books the difference almost entirely against\n\
         the `RTO` bucket.\n\n",
    );
    out.push_str("```\n");
    let cc_cells = robustness::run_points(&cc::full_grid());
    out.push_str(&cc::recovery_table(&cc_cells).render());
    out.push('\n');
    out.push_str(&cc::probe_table(&cc::probe_rows()).render());
    out.push_str("```\n");
    out.push_str(&format!(
        "\nReport digest (two identical runs of the reduced grid required by\n\
         CI's cc-smoke gate): `{:#018x}`.\n",
        cc::report_digest(&cc::report(&robustness::run_points(&cc::reduced_grid())))
    ));

    // ---- Fleet observatory -----------------------------------------------
    out.push_str("\n## Fleet observatory (`telemetry`)\n\n");
    out.push_str(
        "Beyond the paper: the tables above are endpoints \u{2014} one number per\n\
         run. The telemetry subsystem records how those numbers came to be:\n\
         per-connection cwnd/ssthresh/flight/RTO, per-link-direction queue\n\
         depth and drops by reason, and server accept/backlog/memory gauges,\n\
         all sampled on 10 ms sim-time ticks into deterministic integer\n\
         series (zero overhead and bit-identical results when disabled \u{2014}\n\
         differential-tested). Timelines are rendered below as sparklines,\n\
         each column one slice of the run. The first scene replays the scale\n\
         family's listen-backlog overflow: 256 HTTP/1.0 clients connect at\n\
         once, the accept curve saturates, SYN drops burst, the bottleneck\n\
         queue drains. The second replays the congestion-control story: the\n\
         same 2%-loss WAN pipelined cell per variant, where Reno's cwnd\n\
         collapses into RTO stalls that NewReno/SACK ride through. The same\n\
         runs export pcapng (`--bin telemetry` writes `TELEMETRY_*.json/csv/\n\
         pcapng`), so any simulated connection opens in Wireshark/tcptrace\n\
         with real checksums, RFC 2018 SACK options and nanosecond\n\
         timestamps.\n\n",
    );
    out.push_str("```\n");
    out.push_str(&telemetry::report(256));
    out.push('\n');
    out.push_str(&telemetry::volume_table().render());
    out.push_str("```\n");
    out.push_str(
        "\nCI's `telemetry_smoke` gate renders the reduced scene twice and\n\
         byte-compares JSON/CSV/pcapng across passes and against the goldens\n\
         committed under `crates/bench/goldens/telemetry/`.\n",
    );

    // ---- Kernel throughput -----------------------------------------------
    // Cited from the committed BENCH_netsim.json rather than re-measured:
    // wall-clock numbers vary run to run, and regenerating this file must
    // leave it byte-identical on an unchanged tree. `bench_netsim` rewrites
    // the JSON; `bench_netsim --check` gates regressions against it in CI.
    out.push_str("\n## Kernel throughput (`bench_netsim`)\n\n");
    out.push_str(
        "Beyond the paper: how fast the simulator that produced every number\n\
         above runs. Packets/sec is the stats-only serial 44-cell matrix\n\
         (Tables 4\u{2013}9) divided by its wall-clock; allocations/packet counts\n\
         every heap allocation in that run via a counting global allocator\n\
         compiled into the bench binary. Values are quoted from the committed\n\
         `BENCH_netsim.json` (regenerate with `cargo run --release -p\n\
         httpipe-bench --bin bench_netsim`; on both the matrix and the\n\
         fleet path, CI fails on >25% throughput regression or an\n\
         allocations/packet rise beyond pool-warmth noise via `-- --check`).\n\n",
    );
    match std::fs::read_to_string("BENCH_netsim.json") {
        Ok(json) => out.push_str(&kernel_throughput_table(&json)),
        Err(_) => out.push_str(
            "*(no committed BENCH_netsim.json found next to the working\n\
             directory; run `bench_netsim` to produce one)*\n",
        ),
    }

    print!("{out}");
}

/// Scan a hand-rolled JSON document for `"key": <number>` at any depth.
fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Scan for `"key": "<string>"`.
fn json_string<'j>(text: &'j str, key: &str) -> Option<&'j str> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start().strip_prefix('"')?;
    rest.split('"').next()
}

/// Render the committed BENCH_netsim.json as markdown tables.
fn kernel_throughput_table(json: &str) -> String {
    let mut out = String::new();
    out.push_str("| Metric | Committed value |\n|---|---|\n");
    if let Some(v) = json_number(json, "packets_per_sec") {
        out.push_str(&format!(
            "| Matrix packets/sec (serial, stats-only) | {v:.0} |\n"
        ));
    }
    if let Some(v) = json_number(json, "allocs_per_packet") {
        out.push_str(&format!("| Allocations/packet | {v:.1} |\n"));
    }
    if let Some(v) = json_number(json, "matrix_packets") {
        out.push_str(&format!("| Matrix packets | {v:.0} |\n"));
    }
    if let Some(d) = json_string(json, "matrix_digest") {
        out.push_str(&format!("| Matrix digest | `{d}` |\n"));
    }
    if let Some(v) = json_number(json, "fleet_packets_per_sec") {
        out.push_str(&format!(
            "| Fleet packets/sec (16-client WAN, pipelined + mux) | {v:.0} |\n"
        ));
    }
    if let Some(v) = json_number(json, "fleet_allocs_per_packet") {
        out.push_str(&format!("| Fleet allocations/packet | {v:.1} |\n"));
    }
    if let Some(d) = json_string(json, "fleet_digest") {
        out.push_str(&format!("| Fleet digest | `{d}` |\n"));
    }
    if let Some(v) = json_number(json, "available_parallelism") {
        out.push_str(&format!("| Host cores at measurement | {v:.0} |\n"));
    }

    // The microbench array: objects with a fixed key order, written by
    // bench_netsim itself.
    if let Some(start) = json.find("\"microbench\":") {
        let body = &json[start..];
        let body = &body[..body.find(']').unwrap_or(body.len())];
        let mut rows = String::new();
        for obj in body.split('{').skip(1) {
            if let (Some(name), Some(ops), Some(ns), Some(allocs)) = (
                json_string(obj, "name"),
                json_number(obj, "ops"),
                json_number(obj, "ns_per_op"),
                json_number(obj, "allocs_per_op"),
            ) {
                rows.push_str(&format!(
                    "| `{name}` | {ops:.0} | {ns:.1} | {allocs:.2} |\n"
                ));
            }
        }
        if !rows.is_empty() {
            out.push_str("\n| Microbench | ops | ns/op | allocs/op |\n|---|---|---|---|\n");
            out.push_str(&rows);
        }
    }
    out.push_str(
        "\nThe shape to notice: event push/pop and impairment passthrough are\n\
         allocation-free (the timer wheel and pooled effect lists at work),\n\
         segment alloc/free costs exactly the one `Arc` header the pooled\n\
         buffer design promises, and the probe-on cell pays within ~10% of\n\
         probe-off — the flight recorder is cheap enough to leave on. The\n\
         fleet row measures the many-client kernel end to end (two 16-client\n\
         WAN fleets, pipelined and multiplexed), and the mux engine micro\n\
         shuttles 64 concurrent 8 KiB streams sans-IO: pooled DATA payloads\n\
         keep both within a whisker of the single-client matrix cost.\n",
    );
    out
}
