//! `telemetry` — the fleet observatory and its CI determinism gate.
//!
//! Default mode renders the observatory scenes (SYN-burst fleet
//! timeline, RTO-stall cwnd comparison) to stdout and writes the full
//! artifacts next to the repo root:
//!
//! * `TELEMETRY_wan_rto.json` — time-series of the WAN 2%-loss pipelined
//!   cell (NewReno), hand-rolled stable JSON;
//! * `TELEMETRY_fleet.csv` — time-series of the N=8 LAN fleet as CSV;
//! * `TELEMETRY_wan_rto.pcapng` — the same WAN cell's packet capture,
//!   which Wireshark/tshark/tcptrace open directly.
//!
//! `--smoke` is the CI gate: it produces the reduced artifacts twice and
//! asserts (1) both passes agree byte-for-byte and (2) both match the
//! goldens committed under `crates/bench/goldens/telemetry/`. `--bless`
//! regenerates the goldens after an intentional change.
//!
//! ```text
//! HTTPIPE_THREADS=8 cargo run --release -p httpipe-bench --bin telemetry -- --smoke
//! ```

use httpipe_core::experiments::telemetry::{self, SmokeArtifacts};
use std::path::{Path, PathBuf};
use std::time::Instant;

fn goldens_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("goldens")
        .join("telemetry")
}

fn check_bytes(name: &str, pass1: &[u8], pass2: &[u8], golden_path: &Path) -> bool {
    if pass1 != pass2 {
        eprintln!(
            "FAIL {name}: two passes differ ({} vs {} bytes)",
            pass1.len(),
            pass2.len()
        );
        return false;
    }
    match std::fs::read(golden_path) {
        Ok(golden) => {
            if pass1 != golden.as_slice() {
                eprintln!(
                    "FAIL {name}: output differs from golden {} ({} vs {} bytes); \
                     run with --bless after an intentional change",
                    golden_path.display(),
                    pass1.len(),
                    golden.len()
                );
                return false;
            }
            println!(
                "  {name}: {} bytes, both passes + golden agree",
                pass1.len()
            );
            true
        }
        Err(e) => {
            eprintln!(
                "FAIL {name}: cannot read golden {}: {e}",
                golden_path.display()
            );
            false
        }
    }
}

// Wall-clock progress reporting for the smoke harness. simlint: allow(wall-clock)
fn smoke() {
    let start = Instant::now();
    let first = telemetry::smoke_artifacts();
    let second = telemetry::smoke_artifacts();
    let dir = goldens_dir();
    let ok = [
        check_bytes(
            "smoke.json",
            first.json.as_bytes(),
            second.json.as_bytes(),
            &dir.join("smoke.json"),
        ),
        check_bytes(
            "smoke.csv",
            first.csv.as_bytes(),
            second.csv.as_bytes(),
            &dir.join("smoke.csv"),
        ),
        check_bytes(
            "smoke.pcapng",
            &first.pcapng,
            &second.pcapng,
            &dir.join("smoke.pcapng"),
        ),
    ];
    // The exported capture must round-trip through the in-tree reader.
    let packets = netsim::pcapng::parse(&first.pcapng).expect("smoke pcapng parses");
    assert!(!packets.is_empty(), "smoke capture is empty");
    println!(
        "  pcapng round-trip: {} packets re-parsed ({:.2}s total)",
        packets.len(),
        start.elapsed().as_secs_f64()
    );
    if ok.iter().all(|&b| b) {
        println!("telemetry smoke: OK");
    } else {
        std::process::exit(1);
    }
}

fn bless() {
    let art = telemetry::smoke_artifacts();
    let dir = goldens_dir();
    std::fs::create_dir_all(&dir).expect("create goldens dir");
    std::fs::write(dir.join("smoke.json"), art.json.as_bytes()).expect("write json");
    std::fs::write(dir.join("smoke.csv"), art.csv.as_bytes()).expect("write csv");
    std::fs::write(dir.join("smoke.pcapng"), &art.pcapng).expect("write pcapng");
    println!(
        "blessed goldens in {} (json {}B, csv {}B, pcapng {}B)",
        dir.display(),
        art.json.len(),
        art.csv.len(),
        art.pcapng.len()
    );
}

fn full() {
    println!("{}", telemetry::report(256));
    println!("{}", telemetry::volume_table().render());

    let SmokeArtifacts { json, csv, pcapng } = telemetry::smoke_artifacts();
    std::fs::write("TELEMETRY_wan_rto.json", json.as_bytes()).expect("write json");
    std::fs::write("TELEMETRY_fleet.csv", csv.as_bytes()).expect("write csv");
    std::fs::write("TELEMETRY_wan_rto.pcapng", &pcapng).expect("write pcapng");
    println!(
        "wrote TELEMETRY_wan_rto.json ({}B), TELEMETRY_fleet.csv ({}B), \
         TELEMETRY_wan_rto.pcapng ({}B — open it in Wireshark)",
        json.len(),
        csv.len(),
        pcapng.len()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--smoke") => smoke(),
        Some("--bless") => bless(),
        None => full(),
        Some(other) => {
            eprintln!("unknown flag {other}; use --smoke, --bless, or no flag");
            std::process::exit(2);
        }
    }
}
