//! `cc_smoke` — CI determinism and conformance gate for the
//! congestion-control lab.
//!
//! Runs the reduced CC grid (3 setups × {0, 2}% uniform WAN loss × all
//! four [`CcVariant`]s) twice through the parallel executor (thread
//! count from `HTTPIPE_THREADS`, as in CI) and asserts that both passes
//! render bit-identical reports. A third, checked pass replays one lossy
//! cell per variant under the full conformance checker — including the
//! per-variant invariants (`newreno-partial-ack`, `sack-rexmit-sacked`,
//! `cubic-growth-bound`) — and requires zero violations.
//!
//! ```text
//! HTTPIPE_THREADS=8 cargo run --release -p httpipe-bench --bin cc_smoke
//! ```

use httpipe_core::experiments::{cc, robustness};
use httpipe_core::harness::{run_cells, run_spec_checked, worker_threads};
use netsim::CcVariant;
use std::time::Instant;

fn run_once(points: &[robustness::RobustnessPoint]) -> Vec<robustness::RobustnessCell> {
    let specs = points.iter().map(|p| p.spec()).collect();
    points
        .iter()
        .zip(run_cells(specs))
        .map(|(&point, cell)| robustness::RobustnessCell { point, cell })
        .collect()
}

// Wall-clock progress reporting for the smoke harness. simlint: allow(wall-clock)
fn main() {
    let points = cc::reduced_grid();
    let threads = worker_threads(points.len());
    println!(
        "cc smoke: {} cells, {} worker threads, 2 passes + checked pass",
        points.len(),
        threads
    );

    let start = Instant::now();
    let first = run_once(&points);
    let first_digest = cc::report_digest(&cc::report(&first));
    let second = run_once(&points);
    let second_digest = cc::report_digest(&cc::report(&second));

    for (a, b) in first.iter().zip(&second) {
        assert_eq!(
            a.cell, b.cell,
            "nondeterministic cell {:?} / {:?}",
            a.point, b.point
        );
    }
    assert_eq!(
        first_digest, second_digest,
        "report digests differ between passes"
    );

    // Checked pass: one lossy pipelined cell per variant under the full
    // conformance checker, zero violations required.
    for &variant in &cc::VARIANTS {
        let point = first
            .iter()
            .find(|c| {
                c.point.cc == variant
                    && c.point.loss_pct > 0.0
                    && c.point.setup == httpipe_core::harness::ProtocolSetup::Http11Pipelined
            })
            .expect("lossy pipelined cell for every variant")
            .point;
        let (_, report) = run_spec_checked(point.spec());
        assert!(
            report.is_clean(),
            "{} violations under {}:\n{:#?}",
            report.violations.len(),
            variant.label(),
            report.violations
        );
    }
    let secs = start.elapsed().as_secs_f64();

    let non_reno_rexmit: u64 = first
        .iter()
        .filter(|c| c.point.cc != CcVariant::Reno && c.point.loss_pct > 0.0)
        .map(|c| c.cell.retransmits)
        .sum();
    assert!(
        non_reno_rexmit > 0,
        "non-Reno lossy cells produced no retransmissions at all"
    );

    println!("  digest {first_digest:#018x} on both passes ({secs:.2}s total)");
    println!("{}", cc::recovery_table(&first).render());
    println!("cc smoke: OK");
}
