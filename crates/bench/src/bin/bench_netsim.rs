//! `bench_netsim` — wall-clock timing of the full Tables 4–9 protocol
//! matrix (44 cells), comparing the serial and parallel executors and
//! the full versus stats-only trace modes.
//!
//! ```text
//! cargo run --release -p httpipe-bench --bin bench_netsim
//! ```
//!
//! Writes machine-readable results to `BENCH_netsim.json` in the
//! current directory and prints a human summary to stdout. The JSON is
//! hand-rolled (the workspace carries no serde) — one object per
//! configuration plus the derived speedups; see DESIGN.md for the
//! schema.

use httpipe_core::env::NetEnv;
use httpipe_core::experiments::protocol_matrix::matrix_setups;
use httpipe_core::experiments::robustness;
use httpipe_core::harness::{matrix_spec, run_cells_threaded, worker_threads, CellSpec};
use httpipe_core::result::CellResult;
use httpserver::ServerKind;
use netsim::TraceMode;
use std::fmt::Write as _;
use std::time::Instant;

/// Every cell of Tables 4–9, in table order.
fn matrix_specs(mode: TraceMode) -> Vec<CellSpec> {
    let mut specs = Vec::new();
    for env in [NetEnv::Lan, NetEnv::Wan, NetEnv::Ppp] {
        for server in [ServerKind::Jigsaw, ServerKind::Apache] {
            for &setup in matrix_setups(env) {
                for scenario in [
                    httpipe_core::harness::Scenario::FirstTime,
                    httpipe_core::harness::Scenario::Revalidate,
                ] {
                    let mut spec = matrix_spec(env, server, setup, scenario);
                    spec.trace_mode = mode;
                    specs.push(spec);
                }
            }
        }
    }
    specs
}

struct Config {
    name: &'static str,
    threads: Option<usize>,
    mode: TraceMode,
}

struct Timing {
    name: &'static str,
    threads: usize,
    mode: &'static str,
    iters: u32,
    mean_secs: f64,
    min_secs: f64,
    cells: Vec<CellResult>,
}

fn run_config(cfg: &Config, iters: u32) -> Timing {
    // One untimed warmup also produces the cells used for the
    // cross-config equality check.
    let cells = run_cells_threaded(matrix_specs(cfg.mode), cfg.threads);
    let mut total = 0.0f64;
    let mut min = f64::INFINITY;
    for _ in 0..iters {
        let specs = matrix_specs(cfg.mode);
        let start = Instant::now();
        let out = run_cells_threaded(specs, cfg.threads);
        let secs = start.elapsed().as_secs_f64();
        assert_eq!(out, cells, "{}: nondeterministic matrix run", cfg.name);
        total += secs;
        if secs < min {
            min = secs;
        }
    }
    Timing {
        name: cfg.name,
        threads: cfg.threads.unwrap_or_else(|| worker_threads(cells.len())),
        mode: match cfg.mode {
            TraceMode::Full => "full",
            TraceMode::StatsOnly => "stats_only",
        },
        iters,
        mean_secs: total / iters as f64,
        min_secs: min,
        cells,
    }
}

fn main() {
    let iters: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(3);

    let configs = [
        Config {
            name: "serial_full",
            threads: Some(1),
            mode: TraceMode::Full,
        },
        Config {
            name: "serial_stats",
            threads: Some(1),
            mode: TraceMode::StatsOnly,
        },
        Config {
            name: "parallel_full",
            threads: None,
            mode: TraceMode::Full,
        },
        Config {
            name: "parallel_stats",
            threads: None,
            mode: TraceMode::StatsOnly,
        },
    ];

    let n_cells = matrix_specs(TraceMode::StatsOnly).len();
    println!("netsim matrix bench: {n_cells} cells (Tables 4-9), {iters} timed iterations each");

    let timings: Vec<Timing> = configs.iter().map(|c| run_config(c, iters)).collect();

    // Trace mode must not change the measurements, and the parallel
    // executor must agree with the serial one cell-for-cell.
    for t in &timings[1..] {
        assert_eq!(
            t.cells, timings[0].cells,
            "{} disagrees with serial_full",
            t.name
        );
    }

    for t in &timings {
        println!(
            "  {:<16} threads={:<2} trace={:<10} mean {:.3}s  min {:.3}s",
            t.name, t.threads, t.mode, t.mean_secs, t.min_secs
        );
    }

    let by_name = |name: &str| timings.iter().find(|t| t.name == name).unwrap();
    let serial_full = by_name("serial_full");
    let serial_stats = by_name("serial_stats");
    let parallel_stats = by_name("parallel_stats");
    let speedup_parallel = serial_stats.min_secs / parallel_stats.min_secs;
    let speedup_stats = serial_full.min_secs / serial_stats.min_secs;
    let speedup_combined = serial_full.min_secs / parallel_stats.min_secs;
    println!("  parallel over serial (stats-only): {speedup_parallel:.2}x");
    println!("  stats-only over full (serial):     {speedup_stats:.2}x");
    println!("  combined over serial full:         {speedup_combined:.2}x");

    // ---- Robustness grid: impaired-link cells through both executors ----
    let rob_points = robustness::full_grid();
    let rob_specs = || rob_points.iter().map(|p| p.spec()).collect::<Vec<_>>();
    let mk_cells = |cells: Vec<CellResult>| {
        rob_points
            .iter()
            .zip(cells)
            .map(|(&point, cell)| robustness::RobustnessCell { point, cell })
            .collect::<Vec<_>>()
    };
    let start = Instant::now();
    let rob_serial = run_cells_threaded(rob_specs(), Some(1));
    let rob_serial_secs = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let rob_parallel = run_cells_threaded(rob_specs(), None);
    let rob_parallel_secs = start.elapsed().as_secs_f64();
    assert_eq!(
        rob_serial, rob_parallel,
        "robustness grid: parallel disagrees with serial"
    );
    let rob_digest = robustness::report_digest(&mk_cells(rob_serial));
    let rob_speedup = rob_serial_secs / rob_parallel_secs;
    println!(
        "  robustness grid ({} impaired cells): serial {rob_serial_secs:.3}s, \
         parallel {rob_parallel_secs:.3}s ({rob_speedup:.2}x), digest {rob_digest:#018x}",
        rob_points.len()
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"netsim_matrix\",");
    let _ = writeln!(json, "  \"cells\": {n_cells},");
    let _ = writeln!(
        json,
        "  \"available_parallelism\": {},",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    json.push_str("  \"configs\": [\n");
    for (i, t) in timings.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"threads\": {}, \"trace_mode\": \"{}\", \
             \"iters\": {}, \"mean_secs\": {:.6}, \"min_secs\": {:.6}}}",
            t.name, t.threads, t.mode, t.iters, t.mean_secs, t.min_secs
        );
        json.push_str(if i + 1 < timings.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"speedup_parallel_over_serial_stats\": {speedup_parallel:.4},"
    );
    let _ = writeln!(
        json,
        "  \"speedup_stats_over_full_serial\": {speedup_stats:.4},"
    );
    let _ = writeln!(
        json,
        "  \"speedup_combined_over_serial_full\": {speedup_combined:.4},"
    );
    let _ = writeln!(json, "  \"robustness_cells\": {},", rob_points.len());
    let _ = writeln!(json, "  \"robustness_serial_secs\": {rob_serial_secs:.6},");
    let _ = writeln!(
        json,
        "  \"robustness_parallel_secs\": {rob_parallel_secs:.6},"
    );
    let _ = writeln!(json, "  \"robustness_digest\": \"{rob_digest:#018x}\"");
    json.push_str("}\n");

    std::fs::write("BENCH_netsim.json", &json).expect("write BENCH_netsim.json");
    println!("wrote BENCH_netsim.json");
}
