//! `bench_netsim` — the simulator kernel's performance suite.
//!
//! Times the full Tables 4–9 protocol matrix (44 cells) across the
//! serial/parallel executors and full/stats-only trace modes, derives
//! the two headline hot-path metrics — **packets per second** and
//! **allocations per packet** (counted by the `counting-alloc` global
//! allocator, installed in bench builds only) — measures the same pair
//! for the scale engine's fleet path (two 16-client WAN fleets through
//! the shared-bottleneck round-robin link, pipelined and multiplexed),
//! and runs a set of microbenchmarks over the kernel's individual hot
//! paths: event-queue push/pop, pooled segment alloc/free, HTTP header
//! serialize+parse, the impairment-pipeline pass-through, a
//! probe-off/probe-on cell pair, and the sans-IO mux framing engine.
//!
//! ```text
//! cargo run --release -p httpipe-bench --bin bench_netsim            # measure + write JSON
//! cargo run --release -p httpipe-bench --bin bench_netsim -- --check # regression gate
//! ```
//!
//! The default mode writes machine-readable results to
//! `BENCH_netsim.json` in the current directory and prints a human
//! summary. `--check` re-measures the gated metrics and compares them
//! against the *committed* `BENCH_netsim.json`, exiting nonzero on a
//! packets/sec regression of more than 25% or on any
//! allocations-per-packet increase (compared at the recorded 0.1
//! granularity). The JSON is hand-rolled and hand-scanned (the
//! workspace carries no serde) — one object per configuration plus the
//! derived metrics; see DESIGN.md for the schema.
//!
//! Single-core honesty: executor configurations that would run their
//! "parallel" pool with one worker prove nothing about parallelism, so
//! on a 1-core host they are marked `"skipped_single_core"` (still run
//! once for the cell-equality check, never timed) and the parallel
//! speedup figures are omitted.

use httpipe_core::env::NetEnv;
use httpipe_core::experiments::protocol_matrix::matrix_setups;
use httpipe_core::experiments::robustness;
use httpipe_core::experiments::scale::ScalePoint;
use httpipe_core::harness::{
    matrix_spec, run_cells_threaded, run_fleet, run_spec, CellSpec, ProtocolSetup,
};
use httpipe_core::result::CellResult;
use httpserver::ServerKind;
use netsim::queue::EventQueue;
use netsim::{
    HostId, ImpairConfig, Link, LinkConfig, Segment, SimDuration, SimTime, SockAddr, TcpFlags,
    TraceMode, Transmit,
};
use std::fmt::Write as _;
use std::time::Instant;

/// Count every heap allocation the process makes (bench builds only —
/// the library crates never see this).
#[global_allocator]
static ALLOC: counting_alloc::CountingAlloc = counting_alloc::CountingAlloc::new();

/// Timed iterations for the matrix configurations (first arg overrides).
const DEFAULT_ITERS: u32 = 3;
/// Timed iterations for each microbenchmark.
const MICRO_ITERS: u32 = 5;
/// Throughput gate: fail `--check` when packets/sec falls below this
/// fraction of the committed value.
const CHECK_MIN_THROUGHPUT_RATIO: f64 = 0.75;
/// Allocation gate slack. The simulation is deterministic but the
/// thread-local buffer pools are warmed by whatever ran earlier in the
/// process, so the counted pass can differ by a few pool misses between
/// the full bench and `--check`. Real regressions arrive in whole
/// allocations per packet; a fraction of one is pool-warmth noise.
const CHECK_ALLOC_TOLERANCE: f64 = 0.2;

/// Every cell of Tables 4–9, in table order.
fn matrix_specs(mode: TraceMode) -> Vec<CellSpec> {
    let mut specs = Vec::new();
    for env in [NetEnv::Lan, NetEnv::Wan, NetEnv::Ppp] {
        for server in [ServerKind::Jigsaw, ServerKind::Apache] {
            for &setup in matrix_setups(env) {
                for scenario in [
                    httpipe_core::harness::Scenario::FirstTime,
                    httpipe_core::harness::Scenario::Revalidate,
                ] {
                    let mut spec = matrix_spec(env, server, setup, scenario);
                    spec.trace_mode = mode;
                    specs.push(spec);
                }
            }
        }
    }
    specs
}

/// FNV-1a over the `Debug` rendering of every cell, in order — the same
/// digest discipline the smoke binaries use, recorded in the JSON so a
/// perf change that drifts the physics is caught at bench time too.
fn cells_digest(cells: &[CellResult]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for c in cells {
        for &b in format!("{c:?}").as_bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    hash
}

struct Config {
    name: &'static str,
    threads: Option<usize>,
    mode: TraceMode,
}

struct Timing {
    name: &'static str,
    threads: usize,
    mode: &'static str,
    iters: u32,
    mean_secs: f64,
    min_secs: f64,
    skipped_single_core: bool,
    cells: Vec<CellResult>,
}

fn mode_name(mode: TraceMode) -> &'static str {
    match mode {
        TraceMode::Full => "full",
        TraceMode::StatsOnly => "stats_only",
    }
}

// Times real runs on the host clock by design. simlint: allow(wall-clock)
fn run_config(cfg: &Config, iters: u32, cores: usize) -> Timing {
    // One untimed warmup also produces the cells used for the
    // cross-config equality check.
    let cells = run_cells_threaded(matrix_specs(cfg.mode), cfg.threads);
    let threads = cfg
        .threads
        .unwrap_or_else(|| httpipe_core::harness::worker_threads(cells.len()));
    // A "parallel" configuration timed with one worker would just be a
    // slower serial run — mark it honestly instead of timing it.
    if cfg.threads.is_none() && (cores <= 1 || threads <= 1) {
        return Timing {
            name: cfg.name,
            threads,
            mode: mode_name(cfg.mode),
            iters: 0,
            mean_secs: 0.0,
            min_secs: 0.0,
            skipped_single_core: true,
            cells,
        };
    }
    let mut total = 0.0f64;
    let mut min = f64::INFINITY;
    for _ in 0..iters {
        let specs = matrix_specs(cfg.mode);
        let start = Instant::now();
        let out = run_cells_threaded(specs, cfg.threads);
        let secs = start.elapsed().as_secs_f64();
        assert_eq!(out, cells, "{}: nondeterministic matrix run", cfg.name);
        total += secs;
        if secs < min {
            min = secs;
        }
    }
    Timing {
        name: cfg.name,
        threads,
        mode: mode_name(cfg.mode),
        iters,
        mean_secs: total / iters as f64,
        min_secs: min,
        skipped_single_core: false,
        cells,
    }
}

// ---------------------------------------------------------------------
// Hot-path metrics: packets/sec and allocations/packet
// ---------------------------------------------------------------------

struct HotPath {
    packets: u64,
    min_secs: f64,
    packets_per_sec: f64,
    allocs: u64,
    allocs_per_packet: f64,
    digest: u64,
}

/// The headline measurement: the 44-cell matrix, stats-only, on one
/// thread — pure kernel throughput with no tracing or executor noise.
// Times real runs on the host clock by design. simlint: allow(wall-clock)
fn measure_hot_path(iters: u32) -> HotPath {
    // Warmup primes code paths and the thread-local buffer pools so the
    // allocation count reflects steady state.
    let cells = run_cells_threaded(matrix_specs(TraceMode::StatsOnly), Some(1));
    let packets: u64 = cells.iter().map(|c| c.packets()).sum();
    let digest = cells_digest(&cells);

    let a0 = counting_alloc::allocations();
    let out = run_cells_threaded(matrix_specs(TraceMode::StatsOnly), Some(1));
    let allocs = counting_alloc::allocations() - a0;
    assert_eq!(out, cells, "nondeterministic hot-path run");

    let mut min = f64::INFINITY;
    for _ in 0..iters.max(1) {
        let specs = matrix_specs(TraceMode::StatsOnly);
        let start = Instant::now();
        let out = run_cells_threaded(specs, Some(1));
        let secs = start.elapsed().as_secs_f64();
        assert_eq!(out, cells, "nondeterministic hot-path run");
        if secs < min {
            min = secs;
        }
    }
    HotPath {
        packets,
        min_secs: min,
        packets_per_sec: packets as f64 / min,
        allocs,
        allocs_per_packet: allocs as f64 / packets as f64,
        digest,
    }
}

// ---------------------------------------------------------------------
// Fleet-path metrics: the shared-bottleneck scale kernel
// ---------------------------------------------------------------------

/// Clients per fleet in the fleet-path measurement.
const FLEET_CLIENTS: usize = 16;
/// The two fleet kernels measured: the paper's pipelined HTTP/1.1 and
/// the framed multiplexed transport (DATA scheduler + flow control).
const FLEET_SETUPS: [ProtocolSetup; 2] =
    [ProtocolSetup::Http11Pipelined, ProtocolSetup::Multiplexed];

struct FleetPath {
    packets: u64,
    min_secs: f64,
    packets_per_sec: f64,
    allocs: u64,
    allocs_per_packet: f64,
    digest: u64,
}

/// The scale engine's hot path: two 16-client WAN fleets (pipelined and
/// multiplexed) through the shared-bottleneck round-robin link,
/// stats-only. Same metrics as the matrix hot path, so the committed
/// JSON gates the fleet kernel — per-source queueing, the link pump,
/// and the mux frame scheduler — against throughput and allocation
/// regressions.
// Times real runs on the host clock by design. simlint: allow(wall-clock)
fn measure_fleet_path(iters: u32) -> FleetPath {
    let run = || {
        let mut all: Vec<CellResult> = Vec::new();
        for setup in FLEET_SETUPS {
            let point = ScalePoint {
                env: NetEnv::Wan,
                setup,
                n_clients: FLEET_CLIENTS,
            };
            all.extend(run_fleet(point.spec()).per_client);
        }
        all
    };
    // Warmup primes code paths and the thread-local buffer pools.
    let cells = run();
    let packets: u64 = cells.iter().map(|c| c.packets()).sum();
    let digest = cells_digest(&cells);

    let a0 = counting_alloc::allocations();
    let out = run();
    let allocs = counting_alloc::allocations() - a0;
    assert_eq!(out, cells, "nondeterministic fleet-path run");

    let mut min = f64::INFINITY;
    for _ in 0..iters.max(1) {
        let start = Instant::now();
        let out = run();
        let secs = start.elapsed().as_secs_f64();
        assert_eq!(out, cells, "nondeterministic fleet-path run");
        if secs < min {
            min = secs;
        }
    }
    FleetPath {
        packets,
        min_secs: min,
        packets_per_sec: packets as f64 / min,
        allocs,
        allocs_per_packet: allocs as f64 / packets as f64,
        digest,
    }
}

// ---------------------------------------------------------------------
// Microbenchmarks
// ---------------------------------------------------------------------

struct Micro {
    name: &'static str,
    ops: u64,
    ns_per_op: f64,
    allocs_per_op: f64,
}

/// Time `body` (which performs `ops` operations per call): one warmup
/// call, one allocation-counted call, then `MICRO_ITERS` timed calls
/// keeping the minimum.
// Times real runs on the host clock by design. simlint: allow(wall-clock)
fn micro(name: &'static str, ops: u64, mut body: impl FnMut()) -> Micro {
    body();
    let a0 = counting_alloc::allocations();
    body();
    let allocs = counting_alloc::allocations() - a0;
    let mut min = f64::INFINITY;
    for _ in 0..MICRO_ITERS {
        let start = Instant::now();
        body();
        let secs = start.elapsed().as_secs_f64();
        if secs < min {
            min = secs;
        }
    }
    Micro {
        name,
        ops,
        ns_per_op: min * 1e9 / ops as f64,
        allocs_per_op: allocs as f64 / ops as f64,
    }
}

/// Deterministic 64-bit mix (splitmix64 step) for event times.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Timer-wheel push/pop with the arrival pattern the kernel produces:
/// mostly near-future times with an RTO-like far tail.
fn micro_event_queue() -> Micro {
    const N: u64 = 1 << 16;
    micro("event_queue_push_pop", 2 * N, || {
        let mut q: EventQueue<u64> = EventQueue::wheel();
        let mut state = 7u64;
        let mut now = 0u64;
        for i in 0..N {
            let r = mix(&mut state);
            // ~1/64 of events are far-future retransmission timers.
            let delta = if r % 64 == 0 {
                3_000_000_000 + r % 1_000_000_000
            } else {
                r % 2_000_000
            };
            q.push(SimTime::from_nanos(now + delta), i);
            // Drain roughly half as we go, advancing the clock.
            if i % 2 == 0 {
                if let Some((at, _)) = q.pop_before(SimTime::MAX) {
                    now = at.as_nanos();
                }
            }
        }
        while q.pop_before(SimTime::MAX).is_some() {}
        assert!(q.is_empty());
    })
}

/// Pooled payload buffer alloc/free at MSS size.
fn micro_segment_pool() -> Micro {
    const N: u64 = 1 << 14;
    let payload = vec![0xA5u8; 1460];
    micro("segment_alloc_free", N, move || {
        for _ in 0..N {
            let b = bytes::Bytes::pooled_copy_from_slice(&payload);
            std::hint::black_box(&b);
        }
    })
}

/// Serialize + incrementally parse a typical response.
fn micro_header_wire() -> Micro {
    use httpwire::{Method, Response, ResponseParser, StatusCode, Version};
    const N: u64 = 1 << 12;
    let resp = Response::new(Version::Http11, StatusCode::OK)
        .with_header("Date", "Mon, 27 Oct 1997 12:00:00 GMT")
        .with_header("Server", "Jigsaw/1.0beta2")
        .with_header("Content-Type", "image/gif")
        .with_header("ETag", "\"697-1761566400\"")
        .with_header("Last-Modified", "Fri, 24 Oct 1997 12:00:00 GMT")
        .with_header("Content-Length", "697")
        .with_body(vec![0u8; 697]);
    micro("header_serialize_parse", N, move || {
        for _ in 0..N {
            let wire = resp.to_bytes();
            let mut parser = ResponseParser::new();
            parser.expect(Method::Get);
            parser.feed(&wire);
            let out = parser.next().expect("parse").expect("complete");
            std::hint::black_box(&out);
        }
    })
}

/// Full-size segments through a link whose impairment pipeline is
/// configured but inert — the per-packet cost every matrix cell pays.
fn micro_impair_passthrough() -> Micro {
    const N: u64 = 1 << 14;
    let a = HostId(0);
    let b = HostId(1);
    let seg = Segment {
        src: SockAddr::new(a, 40_000),
        dst: SockAddr::new(b, 80),
        seq: 1,
        ack: 1,
        flags: TcpFlags::ACK,
        window: 65_535,
        sack: netsim::SackBlocks::NONE,
        payload: bytes::Bytes::pooled_copy_from_slice(&[0u8; 1460]),
    };
    micro("impair_passthrough", N, move || {
        let mut link = Link::new(
            a,
            b,
            LinkConfig::lan().with_impairment(ImpairConfig::none()),
        );
        let mut now = SimTime::ZERO;
        for _ in 0..N {
            let (outcome, _) = link.transmit(now, a, &seg);
            match outcome {
                Transmit::Arrives(at) => now = at,
                other => panic!("pass-through link dropped a packet: {other:?}"),
            }
            now += SimDuration::from_micros(1);
        }
    })
}

/// One representative cell (LAN/Jigsaw/pipelined/first-time) end to
/// end, per packet, with the probe flight recorder off or on. "Off" is
/// how every matrix cell runs; the on/off spread bounds what the probe
/// hooks cost when disarmed.
fn micro_probe_cell(name: &'static str, probe: bool) -> Micro {
    let build = || {
        let setup = matrix_setups(NetEnv::Lan)
            .iter()
            .copied()
            .find(|s| matches!(s, httpipe_core::harness::ProtocolSetup::Http11Pipelined))
            .expect("pipelined setup in LAN matrix");
        let mut spec = matrix_spec(
            NetEnv::Lan,
            ServerKind::Jigsaw,
            setup,
            httpipe_core::harness::Scenario::FirstTime,
        );
        spec.trace_mode = TraceMode::StatsOnly;
        spec.probe = probe;
        spec
    };
    let packets = run_spec(build()).cell.packets();
    micro(name, packets, move || {
        let out = run_spec(build());
        std::hint::black_box(&out.cell);
    })
}

/// The framing engine alone, no simulator: a client opens 64 streams,
/// the server answers each with headers plus an 8 KiB body, and the two
/// sans-IO endpoints shuttle wire bytes until idle. One op = one full
/// request/response exchange through the DATA scheduler, flow-control
/// windows and the frame parser.
fn micro_mux_engine() -> Micro {
    use httpmux::{MuxConn, MuxEvent};
    const STREAMS: u64 = 64;
    let body = vec![0xC3u8; 8 * 1024];
    let req = vec![
        (":method".to_string(), "GET".to_string()),
        (":path".to_string(), "/x".to_string()),
    ];
    let resp = vec![(":status".to_string(), "200".to_string())];
    let mut wire = Vec::with_capacity(64 * 1024);
    micro("mux_engine_exchange", STREAMS, move || {
        let mut client = MuxConn::client(false);
        let mut server = MuxConn::server();
        for _ in 0..STREAMS {
            client.open_stream(&req, true);
        }
        let mut answered = 0u64;
        loop {
            let mut moved = false;
            wire.clear();
            if client.take_output(usize::MAX, &mut wire) > 0 {
                server.feed(&wire);
                moved = true;
            }
            while let Some(ev) = server.poll_event() {
                if let MuxEvent::Headers { stream, .. } = ev {
                    server.send_headers(stream, &resp, false);
                    server.send_data(stream, &body, true);
                    answered += 1;
                }
            }
            wire.clear();
            if server.take_output(usize::MAX, &mut wire) > 0 {
                client.feed(&wire);
                moved = true;
            }
            while client.poll_event().is_some() {}
            if !moved && client.idle() && server.idle() {
                break;
            }
        }
        assert_eq!(answered, STREAMS, "every stream answered exactly once");
        std::hint::black_box((&client, &server));
    })
}

// ---------------------------------------------------------------------
// --check: regression gate against the committed JSON
// ---------------------------------------------------------------------

/// Scan a hand-rolled JSON document for `"key": <number>` at any depth.
/// Good enough for the flat schema this binary writes.
fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn run_check() -> i32 {
    let committed = match std::fs::read_to_string("BENCH_netsim.json") {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench_netsim --check: cannot read BENCH_netsim.json: {e}");
            return 2;
        }
    };
    let (Some(want_pps), Some(want_app), Some(want_fleet_pps), Some(want_fleet_app)) = (
        json_number(&committed, "packets_per_sec"),
        json_number(&committed, "allocs_per_packet"),
        json_number(&committed, "fleet_packets_per_sec"),
        json_number(&committed, "fleet_allocs_per_packet"),
    ) else {
        eprintln!(
            "bench_netsim --check: committed BENCH_netsim.json predates the gated \
             metrics (missing packets_per_sec / allocs_per_packet / fleet_*); \
             regenerate it with `cargo run --release -p httpipe-bench --bin bench_netsim`"
        );
        return 2;
    };

    let hot = measure_hot_path(DEFAULT_ITERS);
    println!(
        "bench_netsim --check: measured {:.0} packets/sec ({:.1} allocs/packet) \
         vs committed {want_pps:.0} ({want_app:.1})",
        hot.packets_per_sec, hot.allocs_per_packet
    );
    let fleet = measure_fleet_path(DEFAULT_ITERS);
    println!(
        "bench_netsim --check: fleet path {:.0} packets/sec ({:.1} allocs/packet) \
         vs committed {want_fleet_pps:.0} ({want_fleet_app:.1})",
        fleet.packets_per_sec, fleet.allocs_per_packet
    );

    let mut failed = false;
    // Allocations are deterministic; compare at the 0.1/packet
    // granularity the JSON records.
    for (what, pps, app, want_pps, want_app) in [
        (
            "matrix",
            hot.packets_per_sec,
            hot.allocs_per_packet,
            want_pps,
            want_app,
        ),
        (
            "fleet",
            fleet.packets_per_sec,
            fleet.allocs_per_packet,
            want_fleet_pps,
            want_fleet_app,
        ),
    ] {
        if pps < want_pps * CHECK_MIN_THROUGHPUT_RATIO {
            eprintln!(
                "FAIL: {what} packets/sec regressed more than {:.0}%: {pps:.0} < {:.0} \
                 (committed {want_pps:.0})",
                (1.0 - CHECK_MIN_THROUGHPUT_RATIO) * 100.0,
                want_pps * CHECK_MIN_THROUGHPUT_RATIO,
            );
            failed = true;
        }
        let measured_app = (app * 10.0).round() / 10.0;
        if measured_app > want_app + CHECK_ALLOC_TOLERANCE + 1e-9 {
            eprintln!(
                "FAIL: {what} allocations/packet increased: {measured_app:.1} > \
                 committed {want_app:.1} (+{CHECK_ALLOC_TOLERANCE} tolerance)"
            );
            failed = true;
        }
    }
    if failed {
        eprintln!("bench_netsim --check: FAILED");
        1
    } else {
        println!("bench_netsim --check: OK");
        0
    }
}

// ---------------------------------------------------------------------
// --smoke: CI determinism gate — two passes of the stats-only matrix
// under both executors must produce bit-identical digests, and every
// microbench must run. No timing, nothing written.
// ---------------------------------------------------------------------

fn run_smoke() -> i32 {
    let digest_of = |threads: Option<usize>| {
        cells_digest(&run_cells_threaded(
            matrix_specs(TraceMode::StatsOnly),
            threads,
        ))
    };
    let serial = [digest_of(Some(1)), digest_of(Some(1))];
    let threaded = [digest_of(None), digest_of(None)];
    println!(
        "bench_netsim --smoke: serial digests {:#018x} {:#018x}, threaded {:#018x} {:#018x}",
        serial[0], serial[1], threaded[0], threaded[1]
    );
    if serial[0] != serial[1] || threaded[0] != threaded[1] || serial[0] != threaded[0] {
        eprintln!("bench_netsim --smoke: FAILED — matrix digests diverge across passes/executors");
        return 1;
    }
    // The fleet path must be as repeatable as the matrix: two runs of
    // the shared-bottleneck kernel with identical per-client digests.
    let fleet_digest = || {
        let mut all: Vec<CellResult> = Vec::new();
        for setup in FLEET_SETUPS {
            let point = ScalePoint {
                env: NetEnv::Wan,
                setup,
                n_clients: FLEET_CLIENTS,
            };
            all.extend(run_fleet(point.spec()).per_client);
        }
        cells_digest(&all)
    };
    let fleet = [fleet_digest(), fleet_digest()];
    println!(
        "bench_netsim --smoke: fleet digests {:#018x} {:#018x}",
        fleet[0], fleet[1]
    );
    if fleet[0] != fleet[1] {
        eprintln!("bench_netsim --smoke: FAILED — fleet digests diverge across passes");
        return 1;
    }
    for m in [
        micro_event_queue(),
        micro_segment_pool(),
        micro_header_wire(),
        micro_impair_passthrough(),
        micro_probe_cell("probe_off_cell", false),
        micro_probe_cell("probe_on_cell", true),
        micro_mux_engine(),
    ] {
        println!(
            "bench_netsim --smoke: {} ok ({} ops, {:.2} allocs/op)",
            m.name, m.ops, m.allocs_per_op
        );
    }
    println!("bench_netsim --smoke: OK");
    0
}

// ---------------------------------------------------------------------

// Times real runs on the host clock by design. simlint: allow(wall-clock)
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--check") {
        std::process::exit(run_check());
    }
    if args.iter().any(|a| a == "--smoke") {
        std::process::exit(run_smoke());
    }
    let iters: u32 = args
        .first()
        .and_then(|a| a.parse().ok())
        .unwrap_or(DEFAULT_ITERS);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let configs = [
        Config {
            name: "serial_full",
            threads: Some(1),
            mode: TraceMode::Full,
        },
        Config {
            name: "serial_stats",
            threads: Some(1),
            mode: TraceMode::StatsOnly,
        },
        Config {
            name: "parallel_full",
            threads: None,
            mode: TraceMode::Full,
        },
        Config {
            name: "parallel_stats",
            threads: None,
            mode: TraceMode::StatsOnly,
        },
    ];

    let n_cells = matrix_specs(TraceMode::StatsOnly).len();
    println!(
        "netsim matrix bench: {n_cells} cells (Tables 4-9), {iters} timed iterations each, \
         {cores} core(s)"
    );

    let timings: Vec<Timing> = configs
        .iter()
        .map(|c| run_config(c, iters, cores))
        .collect();

    // Trace mode must not change the measurements, and the parallel
    // executor must agree with the serial one cell-for-cell.
    for t in &timings[1..] {
        assert_eq!(
            t.cells, timings[0].cells,
            "{} disagrees with serial_full",
            t.name
        );
    }

    for t in &timings {
        if t.skipped_single_core {
            println!(
                "  {:<16} threads={:<2} trace={:<10} skipped (single core)",
                t.name, t.threads, t.mode
            );
        } else {
            println!(
                "  {:<16} threads={:<2} trace={:<10} mean {:.3}s  min {:.3}s",
                t.name, t.threads, t.mode, t.mean_secs, t.min_secs
            );
        }
    }

    let by_name = |name: &str| timings.iter().find(|t| t.name == name).unwrap();
    let serial_full = by_name("serial_full");
    let serial_stats = by_name("serial_stats");
    let parallel_stats = by_name("parallel_stats");
    let parallel_ok = !parallel_stats.skipped_single_core;
    let speedup_stats = serial_full.min_secs / serial_stats.min_secs;
    println!("  stats-only over full (serial):     {speedup_stats:.2}x");
    let (speedup_parallel, speedup_combined) = if parallel_ok {
        let p = serial_stats.min_secs / parallel_stats.min_secs;
        let c = serial_full.min_secs / parallel_stats.min_secs;
        println!("  parallel over serial (stats-only): {p:.2}x");
        println!("  combined over serial full:         {c:.2}x");
        (Some(p), Some(c))
    } else {
        println!("  parallel speedups: skipped_single_core");
        (None, None)
    };

    // ---- Hot-path headline metrics ----------------------------------
    let hot = measure_hot_path(iters);
    println!(
        "  hot path (serial, stats-only): {} packets in {:.3}s = {:.0} packets/sec, \
         {:.1} allocs/packet, digest {:#018x}",
        hot.packets, hot.min_secs, hot.packets_per_sec, hot.allocs_per_packet, hot.digest
    );

    // ---- Fleet-path metrics -----------------------------------------
    let fleet = measure_fleet_path(iters);
    println!(
        "  fleet path (2x{FLEET_CLIENTS}-client WAN fleets, serial): {} packets in {:.3}s = \
         {:.0} packets/sec, {:.1} allocs/packet, digest {:#018x}",
        fleet.packets, fleet.min_secs, fleet.packets_per_sec, fleet.allocs_per_packet, fleet.digest
    );

    // ---- Microbenchmarks --------------------------------------------
    let micros = [
        micro_event_queue(),
        micro_segment_pool(),
        micro_header_wire(),
        micro_impair_passthrough(),
        micro_probe_cell("probe_off_cell", false),
        micro_probe_cell("probe_on_cell", true),
        micro_mux_engine(),
    ];
    for m in &micros {
        println!(
            "  micro {:<24} {:>8} ops  {:>9.1} ns/op  {:>6.2} allocs/op",
            m.name, m.ops, m.ns_per_op, m.allocs_per_op
        );
    }

    // ---- Robustness grid: impaired-link cells through both executors ----
    let rob_points = robustness::full_grid();
    let rob_specs = || rob_points.iter().map(|p| p.spec()).collect::<Vec<_>>();
    let mk_cells = |cells: Vec<CellResult>| {
        rob_points
            .iter()
            .zip(cells)
            .map(|(&point, cell)| robustness::RobustnessCell { point, cell })
            .collect::<Vec<_>>()
    };
    let start = Instant::now();
    let rob_serial = run_cells_threaded(rob_specs(), Some(1));
    let rob_serial_secs = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let rob_parallel = run_cells_threaded(rob_specs(), None);
    let rob_parallel_secs = start.elapsed().as_secs_f64();
    assert_eq!(
        rob_serial, rob_parallel,
        "robustness grid: parallel disagrees with serial"
    );
    let rob_digest = robustness::report_digest(&mk_cells(rob_serial));
    if parallel_ok {
        let rob_speedup = rob_serial_secs / rob_parallel_secs;
        println!(
            "  robustness grid ({} impaired cells): serial {rob_serial_secs:.3}s, \
             parallel {rob_parallel_secs:.3}s ({rob_speedup:.2}x), digest {rob_digest:#018x}",
            rob_points.len()
        );
    } else {
        println!(
            "  robustness grid ({} impaired cells): serial {rob_serial_secs:.3}s, \
             digest {rob_digest:#018x} (parallel timing skipped, single core)",
            rob_points.len()
        );
    }

    // ---- JSON --------------------------------------------------------
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"netsim_matrix\",");
    let _ = writeln!(json, "  \"cells\": {n_cells},");
    let _ = writeln!(json, "  \"available_parallelism\": {cores},");
    json.push_str("  \"configs\": [\n");
    for (i, t) in timings.iter().enumerate() {
        if t.skipped_single_core {
            let _ = write!(
                json,
                "    {{\"name\": \"{}\", \"threads\": {}, \"trace_mode\": \"{}\", \
                 \"status\": \"skipped_single_core\"}}",
                t.name, t.threads, t.mode
            );
        } else {
            let _ = write!(
                json,
                "    {{\"name\": \"{}\", \"threads\": {}, \"trace_mode\": \"{}\", \
                 \"iters\": {}, \"mean_secs\": {:.6}, \"min_secs\": {:.6}, \"status\": \"ok\"}}",
                t.name, t.threads, t.mode, t.iters, t.mean_secs, t.min_secs
            );
        }
        json.push_str(if i + 1 < timings.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"matrix_packets\": {},", hot.packets);
    let _ = writeln!(json, "  \"matrix_digest\": \"{:#018x}\",", hot.digest);
    let _ = writeln!(json, "  \"hot_path_min_secs\": {:.6},", hot.min_secs);
    let _ = writeln!(json, "  \"packets_per_sec\": {:.0},", hot.packets_per_sec);
    let _ = writeln!(json, "  \"matrix_allocs\": {},", hot.allocs);
    let _ = writeln!(
        json,
        "  \"allocs_per_packet\": {:.1},",
        hot.allocs_per_packet
    );
    let _ = writeln!(json, "  \"fleet_clients\": {FLEET_CLIENTS},");
    let _ = writeln!(json, "  \"fleet_packets\": {},", fleet.packets);
    let _ = writeln!(json, "  \"fleet_digest\": \"{:#018x}\",", fleet.digest);
    let _ = writeln!(json, "  \"fleet_min_secs\": {:.6},", fleet.min_secs);
    let _ = writeln!(
        json,
        "  \"fleet_packets_per_sec\": {:.0},",
        fleet.packets_per_sec
    );
    let _ = writeln!(json, "  \"fleet_allocs\": {},", fleet.allocs);
    let _ = writeln!(
        json,
        "  \"fleet_allocs_per_packet\": {:.1},",
        fleet.allocs_per_packet
    );
    let _ = writeln!(
        json,
        "  \"speedup_stats_over_full_serial\": {speedup_stats:.4},"
    );
    if let (Some(p), Some(c)) = (speedup_parallel, speedup_combined) {
        let _ = writeln!(json, "  \"speedup_parallel_over_serial_stats\": {p:.4},");
        let _ = writeln!(json, "  \"speedup_combined_over_serial_full\": {c:.4},");
    }
    json.push_str("  \"microbench\": [\n");
    for (i, m) in micros.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"ops\": {}, \"ns_per_op\": {:.1}, \"allocs_per_op\": {:.2}}}",
            m.name, m.ops, m.ns_per_op, m.allocs_per_op
        );
        json.push_str(if i + 1 < micros.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"robustness_cells\": {},", rob_points.len());
    let _ = writeln!(json, "  \"robustness_serial_secs\": {rob_serial_secs:.6},");
    if parallel_ok {
        let _ = writeln!(
            json,
            "  \"robustness_parallel_secs\": {rob_parallel_secs:.6},"
        );
    }
    let _ = writeln!(json, "  \"robustness_digest\": \"{rob_digest:#018x}\"");
    json.push_str("}\n");

    std::fs::write("BENCH_netsim.json", &json).expect("write BENCH_netsim.json");
    println!("wrote BENCH_netsim.json");
}
