//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro                 # everything
//! repro table3 table8   # specific tables
//! repro list            # available experiment ids
//! ```

use httpipe_core::env::NetEnv;
use httpipe_core::experiments::{
    ablations, browsers, cc, closemgmt, compression, content, mux, nagle, probe, protocol_matrix,
    ranges, robustness, scale, summary, verbosity,
};
use httpserver::ServerKind;

struct Experiment {
    id: &'static str,
    what: &'static str,
    run: fn(),
}

fn experiments() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "table1",
            what: "Tested network environments",
            run: || println!("{}", protocol_matrix::table1().render()),
        },
        Experiment {
            id: "table3",
            what: "Initial (untuned) LAN cache revalidation, Jigsaw",
            run: || println!("{}", protocol_matrix::table3().render()),
        },
        Experiment {
            id: "table4",
            what: "Jigsaw, LAN: protocol matrix",
            run: || {
                println!(
                    "{}",
                    protocol_matrix::matrix_table(NetEnv::Lan, ServerKind::Jigsaw).render()
                )
            },
        },
        Experiment {
            id: "table5",
            what: "Apache, LAN: protocol matrix",
            run: || {
                println!(
                    "{}",
                    protocol_matrix::matrix_table(NetEnv::Lan, ServerKind::Apache).render()
                )
            },
        },
        Experiment {
            id: "table6",
            what: "Jigsaw, WAN: protocol matrix",
            run: || {
                println!(
                    "{}",
                    protocol_matrix::matrix_table(NetEnv::Wan, ServerKind::Jigsaw).render()
                )
            },
        },
        Experiment {
            id: "table7",
            what: "Apache, WAN: protocol matrix",
            run: || {
                println!(
                    "{}",
                    protocol_matrix::matrix_table(NetEnv::Wan, ServerKind::Apache).render()
                )
            },
        },
        Experiment {
            id: "table8",
            what: "Jigsaw, PPP: protocol matrix",
            run: || {
                println!(
                    "{}",
                    protocol_matrix::matrix_table(NetEnv::Ppp, ServerKind::Jigsaw).render()
                )
            },
        },
        Experiment {
            id: "table9",
            what: "Apache, PPP: protocol matrix",
            run: || {
                println!(
                    "{}",
                    protocol_matrix::matrix_table(NetEnv::Ppp, ServerKind::Apache).render()
                )
            },
        },
        Experiment {
            id: "table10",
            what: "Jigsaw, PPP: Navigator vs Internet Explorer",
            run: || println!("{}", browsers::browser_table(ServerKind::Jigsaw).render()),
        },
        Experiment {
            id: "table11",
            what: "Apache, PPP: Navigator vs Internet Explorer",
            run: || println!("{}", browsers::browser_table(ServerKind::Apache).render()),
        },
        Experiment {
            id: "modem",
            what: "Deflate vs V.42bis modem compression (single HTML GET)",
            run: || println!("{}", compression::modem_table().render()),
        },
        Experiment {
            id: "deflate",
            what: "HTML transport compression and the tag-case effect",
            run: || println!("{}", compression::deflate_table().render()),
        },
        Experiment {
            id: "figure1",
            what: "The 'solutions' GIF vs its HTML+CSS replacement",
            run: || {
                let f = content::figure1();
                println!("=== Figure 1 - 'solutions' banner ===");
                println!("GIF bytes:              {}", f.gif_bytes);
                println!("CSS rule:               {}", f.css_rule);
                println!("Replacement markup:     {}", f.markup);
                println!("HTML+CSS bytes:         {}", f.replacement_bytes);
                println!(
                    "Reduction factor:       {:.1}x\n",
                    f.gif_bytes as f64 / f.replacement_bytes as f64
                );
            },
        },
        Experiment {
            id: "css",
            what: "CSS replacement analysis + end-to-end browse comparison",
            run: || {
                println!("{}", content::css_analysis_table().render());
                println!("{}", content::css_browse_table().render());
            },
        },
        Experiment {
            id: "png",
            what: "GIF->PNG and GIF->MNG conversion study",
            run: || println!("{}", content::conversion_table().render()),
        },
        Experiment {
            id: "nagle",
            what: "Nagle algorithm x write buffering interaction",
            run: || {
                println!("{}", nagle::nagle_table(NetEnv::Lan).render());
                println!("{}", nagle::nagle_table(NetEnv::Ppp).render());
            },
        },
        Experiment {
            id: "closerst",
            what: "Connection-management: naive close vs independent half-close",
            run: || println!("{}", closemgmt::close_table(NetEnv::Ppp, 5).render()),
        },
        Experiment {
            id: "summary",
            what: "Back-of-envelope: all techniques vs HTTP/1.0 over a modem",
            run: || println!("{}", summary::summary_table().render()),
        },
        Experiment {
            id: "ranges",
            what: "Poor man's multiplexing: leading-range revisit of a revised site",
            run: || {
                println!("{}", ranges::range_table(NetEnv::Ppp).render());
            },
        },
        Experiment {
            id: "ablations",
            what: "Design-choice sweeps: buffer threshold, flush timer, app flush, initial cwnd",
            run: || {
                for t in ablations::ablation_tables() {
                    println!("{}", t.render());
                }
            },
        },
        Experiment {
            id: "verbosity",
            what: "HTTP request redundancy and the compact-encoding headroom",
            run: || println!("{}", verbosity::verbosity_table().render()),
        },
        Experiment {
            id: "robustness",
            what: "Protocol matrix under packet loss + jitter/reordering study",
            run: || {
                let cells = robustness::run_points(&robustness::full_grid());
                for t in robustness::report(&cells) {
                    println!("{}", t.render());
                }
                println!(
                    "{}",
                    robustness::jitter_table(&robustness::jitter_study()).render()
                );
            },
        },
        Experiment {
            id: "scale",
            what:
                "Many-client fleets on one bottleneck: fairness, peak server connections, SYN drops",
            run: || {
                let cells = scale::run_points(&scale::full_grid());
                for t in scale::report(&cells) {
                    println!("{}", t.render());
                }
            },
        },
        Experiment {
            id: "mux",
            what: "Multiplexing + server push: matrix, loss shared fate, fleets, stall probe",
            run: || {
                for env in NetEnv::ALL {
                    for server in [ServerKind::Jigsaw, ServerKind::Apache] {
                        println!("{}", mux::matrix_table(env, server).render());
                    }
                }
                let cells = robustness::run_points(&mux::loss_grid());
                for t in robustness::report(&cells) {
                    println!("{}", t.render());
                }
                for env in NetEnv::ALL {
                    println!("{}", mux::shared_fate_table(&cells, env).render());
                }
                let fleets = scale::run_points(&mux::fleet_grid());
                for t in scale::report(&fleets) {
                    println!("{}", t.render());
                }
                let probes = probe::run_points(&mux::probe_grid());
                println!("{}", probe::report(&probes).render());
            },
        },
        Experiment {
            id: "cc",
            what: "Loss grid under Reno/NewReno/SACK/CUBIC recovery + per-variant stall probe",
            run: || {
                let cells = robustness::run_points(&cc::full_grid());
                for t in cc::report(&cells) {
                    println!("{}", t.render());
                }
                println!("{}", cc::probe_table(&cc::probe_rows()).render());
            },
        },
        Experiment {
            id: "xplot",
            what: "Write xplot-format time-sequence graphs (the paper's debugging tool)",
            run: || {
                use httpipe_core::harness::{matrix_spec, run_spec, ProtocolSetup, Scenario};
                for (name, setup) in [
                    ("http10", ProtocolSetup::Http10),
                    ("pipelined", ProtocolSetup::Http11Pipelined),
                ] {
                    let mut spec =
                        matrix_spec(NetEnv::Wan, ServerKind::Apache, setup, Scenario::FirstTime);
                    // The matrix defaults to stats-only tracing; xplot
                    // needs the per-packet records.
                    spec.trace_mode = netsim::TraceMode::Full;
                    let out = run_spec(spec);
                    let plot = out
                        .sim
                        .trace()
                        .xplot(out.server_host, &format!("{name} first-time WAN"))
                        .expect("trace captured in Full mode");
                    let path = format!("xplot_{name}.xpl");
                    std::fs::write(&path, plot).expect("write xplot file");
                    println!("wrote {path} (server->client time-sequence)");
                }
            },
        },
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = experiments();

    if args.iter().any(|a| a == "list") {
        println!("available experiments:");
        for e in &all {
            println!("  {:<10} {}", e.id, e.what);
        }
        return;
    }

    let selected: Vec<&Experiment> = if args.is_empty() {
        all.iter().collect()
    } else {
        let mut v = Vec::new();
        for arg in &args {
            match all.iter().find(|e| e.id == *arg) {
                Some(e) => v.push(e),
                None => {
                    eprintln!("unknown experiment '{arg}' (try: repro list)");
                    std::process::exit(1);
                }
            }
        }
        v
    };

    for e in selected {
        (e.run)();
    }
}
