//! `conformance_smoke` — CI conformance gate for the simulation kernel.
//!
//! Sweeps the full unimpaired protocol matrix (every environment ×
//! server × protocol setup × scenario) plus a sampled impaired grid
//! (the reduced WAN loss grid and the jitter/reordering study) through
//! [`run_cells_checked`], which re-runs each cell with full per-packet
//! tracing and verifies every TCP and HTTP invariant in the
//! `conformance` crate against the finished trace. Any violation
//! prints its detail and exits nonzero.
//!
//! ```text
//! HTTPIPE_THREADS=8 cargo run --release -p httpipe-bench --bin conformance_smoke
//! ```

use httpipe_core::env::NetEnv;
use httpipe_core::experiments::{protocol_matrix, robustness};
use httpipe_core::harness::{matrix_spec, run_cells_checked, worker_threads, CellSpec, Scenario};
use httpserver::ServerKind;
use std::time::Instant;

fn unimpaired_matrix() -> Vec<CellSpec> {
    let mut specs = Vec::new();
    for env in NetEnv::ALL {
        for server in [ServerKind::Apache, ServerKind::Jigsaw] {
            for &setup in protocol_matrix::matrix_setups(env) {
                for scenario in [Scenario::FirstTime, Scenario::Revalidate] {
                    specs.push(matrix_spec(env, server, setup, scenario));
                }
            }
        }
    }
    specs
}

fn impaired_sample() -> Vec<CellSpec> {
    let mut specs: Vec<CellSpec> = robustness::reduced_grid()
        .iter()
        .map(|p| p.spec())
        .collect();
    for setup in robustness::SETUPS {
        for jitter_ms in robustness::JITTER_GRID_MS {
            specs.push(robustness::JitterPoint { setup, jitter_ms }.spec());
        }
    }
    specs
}

// Wall-clock progress reporting for the smoke harness. simlint: allow(wall-clock)
fn main() {
    let mut specs = unimpaired_matrix();
    let unimpaired = specs.len();
    specs.extend(impaired_sample());
    let total = specs.len();
    println!(
        "conformance smoke: {unimpaired} unimpaired + {} impaired cells, {} worker threads",
        total - unimpaired,
        worker_threads(total)
    );

    let start = Instant::now();
    let (cells, report) = run_cells_checked(specs);
    let secs = start.elapsed().as_secs_f64();

    assert_eq!(cells.len(), total, "every cell must produce a result");
    println!(
        "  checked {} connections, {} segments, {} HTTP requests ({secs:.2}s)",
        report.connections, report.segments, report.http_requests
    );
    if !report.is_clean() {
        eprintln!("conformance smoke: FAILED");
        eprintln!("{}", report.summary());
        for v in &report.violations {
            eprintln!("  {v}");
        }
        std::process::exit(1);
    }
    assert!(
        report.connections > 0 && report.segments > 0 && report.http_requests > 0,
        "checker saw no traffic — trace plumbing is broken"
    );
    println!("conformance smoke: OK");
}
