//! `mux_smoke` — CI determinism gate for the multiplexed transport.
//!
//! Runs the reduced mux report (LAN matrix, reduced WAN loss grid with
//! its shared-fate extract, LAN stall probe) twice through the parallel
//! executor (thread count from `HTTPIPE_THREADS`, as in CI) and asserts
//! that both passes render bit-identical tables. Any nondeterminism in
//! the frame scheduler, the push pipeline or the flow-control windows
//! shows up as a digest mismatch and a nonzero exit.
//!
//! ```text
//! HTTPIPE_THREADS=8 cargo run --release -p httpipe-bench --bin mux_smoke
//! ```

use httpipe_core::experiments::mux;
use std::time::Instant;

// Wall-clock progress reporting for the smoke harness. simlint: allow(wall-clock)
fn main() {
    let start = Instant::now();
    let first = mux::reduced_report();
    let first_digest = mux::report_digest(&first);
    let second = mux::reduced_report();
    let second_digest = mux::report_digest(&second);
    let secs = start.elapsed().as_secs_f64();

    println!("mux smoke: {} tables, 2 passes", first.len());
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(
            a.render(),
            b.render(),
            "nondeterministic table '{}'",
            a.title
        );
    }
    assert_eq!(
        first_digest, second_digest,
        "report digests differ between passes"
    );

    // The push column must be live: the LAN matrix table's push row
    // reports nonzero pushed bytes.
    let matrix = first[0].render();
    assert!(
        matrix.contains("HTTP/mux + push"),
        "matrix table lost its push row:\n{matrix}"
    );

    println!("  digest {first_digest:#018x} on both passes ({secs:.2}s total)");
    println!("mux smoke: OK");
}
