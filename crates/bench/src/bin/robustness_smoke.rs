//! `robustness_smoke` — CI determinism gate for the impairment pipeline.
//!
//! Runs the reduced robustness grid twice through the parallel executor
//! (thread count from `HTTPIPE_THREADS`, as in CI) and asserts that both
//! passes render bit-identical reports. Any nondeterminism in the
//! seeded impairment streams, the trace accounting or the thread pool
//! shows up as a digest mismatch and a nonzero exit.
//!
//! ```text
//! HTTPIPE_THREADS=8 cargo run --release -p httpipe-bench --bin robustness_smoke
//! ```

use httpipe_core::experiments::robustness::{self, RobustnessCell};
use httpipe_core::harness::{run_cells, worker_threads};
use std::time::Instant;

fn run_once(points: &[robustness::RobustnessPoint]) -> Vec<RobustnessCell> {
    let specs = points.iter().map(|p| p.spec()).collect();
    points
        .iter()
        .zip(run_cells(specs))
        .map(|(&point, cell)| RobustnessCell { point, cell })
        .collect()
}

// Wall-clock progress reporting for the smoke harness. simlint: allow(wall-clock)
fn main() {
    let points = robustness::reduced_grid();
    let threads = worker_threads(points.len());
    println!(
        "robustness smoke: {} cells, {} worker threads, 2 passes",
        points.len(),
        threads
    );

    let start = Instant::now();
    let first = run_once(&points);
    let first_digest = robustness::report_digest(&first);
    let second = run_once(&points);
    let second_digest = robustness::report_digest(&second);
    let secs = start.elapsed().as_secs_f64();

    for (a, b) in first.iter().zip(&second) {
        assert_eq!(
            a.cell, b.cell,
            "nondeterministic cell {:?} / {:?}",
            a.point, b.point
        );
    }
    assert_eq!(
        first_digest, second_digest,
        "report digests differ between passes"
    );

    let lossy_rexmit: u64 = first
        .iter()
        .filter(|c| c.point.loss_pct > 0.0)
        .map(|c| c.cell.retransmits)
        .sum();
    assert!(
        lossy_rexmit > 0,
        "lossy cells produced no retransmissions at all"
    );

    println!("  digest {first_digest:#018x} on both passes ({secs:.2}s total)");
    println!("  lossy-cell retransmissions: {lossy_rexmit}");
    println!("robustness smoke: OK");
}
