//! `diagnose` — run the canonical protocol-matrix cells with the
//! flight recorder on and explain where the elapsed time went.
//!
//! For every cell of {LAN, WAN, PPP} × {HTTP/1.0×4, persistent,
//! pipelined} (Apache, first-time retrieval) this prints the
//! stall-bucket decomposition, a per-connection/per-request timeline,
//! any automatic diagnoses, and writes the full machine-readable
//! attribution to `PROBE_<cell>.json` in the working directory.
//!
//! ```text
//! cargo run --release -p httpipe-bench --bin diagnose
//! cargo run --release -p httpipe-bench --bin diagnose -- --smoke
//! ```
//!
//! `--smoke` is the CI determinism gate: the reduced (LAN-only) grid is
//! run twice and both passes must produce bit-identical reports and
//! JSON documents (compared by digest); nothing is written to disk.

use httpipe_core::experiments::probe::{self, ProbeCell};
use httpipe_core::harness::worker_threads;
use netsim::Diagnosis;
use std::time::Instant;

fn fmt_opt(t: Option<netsim::SimTime>, start: netsim::SimTime) -> String {
    match t {
        Some(t) => format!("{:8.3}", t.since(start).as_secs_f64()),
        None => "       -".to_string(),
    }
}

fn print_cell(cell: &ProbeCell) {
    let a = &cell.analysis;
    let start = a.start;
    println!("--- {} ({}) ---", cell.point.label(), cell.point.id());
    print!("  buckets:");
    for (name, secs) in a.report.buckets.entries() {
        if secs > 0.0005 {
            print!(" {name} {secs:.2}");
        }
    }
    println!(
        "  (sum {:.2}, elapsed {:.2})",
        a.report.buckets.sum(),
        cell.secs
    );
    println!(
        "  connections: {} open, {} requests",
        a.report.connections, a.report.requests
    );
    for c in &a.connections {
        println!(
            "    {} > {}  opened {:8.3}  established {}",
            c.local,
            c.remote,
            c.opened.since(start).as_secs_f64(),
            fmt_opt(c.established, start),
        );
    }
    println!("  requests (secs since first packet: queued / written / first byte / complete):");
    for r in &a.requests {
        println!(
            "    {:32} {:8.3} {} {} {}",
            r.path,
            r.queued.since(start).as_secs_f64(),
            fmt_opt(r.written, start),
            fmt_opt(r.first_byte, start),
            fmt_opt(r.complete, start),
        );
    }
    if a.diagnoses.is_empty() {
        println!("  diagnoses: none");
    } else {
        for d in &a.diagnoses {
            match d {
                Diagnosis::NaglePipelining {
                    local,
                    remote,
                    stall_secs,
                } => println!(
                    "  diagnosis: Nagle x pipelining stall on {local} > {remote} ({stall_secs:.3}s)"
                ),
                Diagnosis::MissedFlushExtraRtt {
                    count,
                    worst_gap_secs,
                } => println!(
                    "  diagnosis: {count} missed flush(es), worst extra latency {worst_gap_secs:.3}s"
                ),
            }
        }
    }
}

// Wall-clock progress reporting for the smoke harness. simlint: allow(wall-clock)
fn smoke() {
    let points = probe::reduced_grid();
    let threads = worker_threads(points.len());
    println!(
        "diagnose smoke: {} cells, {} worker threads, 2 passes",
        points.len(),
        threads
    );
    let start = Instant::now();
    let first = probe::run_points(&points);
    let first_digest = probe::report_digest(&first);
    let second = probe::run_points(&points);
    let second_digest = probe::report_digest(&second);
    let secs = start.elapsed().as_secs_f64();

    for (a, b) in first.iter().zip(&second) {
        assert_eq!(a.point, b.point);
        assert_eq!(
            a.analysis, b.analysis,
            "nondeterministic attribution for {:?}",
            a.point
        );
    }
    assert_eq!(
        first_digest, second_digest,
        "probe report digests differ between passes"
    );
    for cell in &first {
        let sum = cell.analysis.report.buckets.sum();
        assert!(
            (sum - cell.secs).abs() <= cell.secs * 0.01,
            "{:?}: buckets {sum} vs elapsed {}",
            cell.point,
            cell.secs
        );
    }
    println!("  digest {first_digest:#018x} on both passes ({secs:.2}s total)");
    println!("diagnose smoke: OK");
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    let cells = probe::run_points(&probe::canonical_grid());
    println!("{}", probe::report(&cells).render());
    for cell in &cells {
        print_cell(cell);
        let path = format!("PROBE_{}.json", cell.point.id());
        std::fs::write(&path, cell.analysis.render_json(&cell.point.id()))
            .expect("write probe json");
        println!("  wrote {path}");
        println!();
    }
}
