//! Repo maintenance tasks.
//!
//! `cargo run -p xtask -- lint [--json PATH]` runs the simlint static
//! analysis pass over every crate and exits nonzero on any diagnostic
//! at severity warn or above. This is the single lint entry point: CI
//! invokes exactly the same command, with `--json` to capture the
//! machine-readable report as a build artifact.
//!
//! The rules themselves live in `crates/simlint` — a scope-aware engine
//! (minimal Rust lexer + brace/item scoper), so needles inside comments
//! and string literals never fire, reformatting cannot hide a
//! violation, and suppressions can be function-granular. See DESIGN.md
//! ("Static analysis") for the rule catalog, the RFC 793 spec table,
//! and how to add a rule.
//!
//! Suppressions:
//! - line-granular: a trailing comment on the offending line naming the
//!   rule, e.g. `// simlint: allow(<rule-id>)` with a real rule id (the
//!   legacy `xtask:` marker spelling still works);
//! - function-granular: the same marker in the comment block above a
//!   function signature covers the whole body;
//! - file-granular: a `<rule-id> <path>` line in `xtask-allow.txt` at
//!   the repo root.
//!
//! Every suppression must still fire: a marker or allowlist entry that
//! no longer matches anything is itself reported (`stale-allow`), so
//! dead exemptions cannot linger and mask future regressions.

use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        _ => {
            eprintln!("usage: cargo run -p xtask -- lint [--json PATH]");
            ExitCode::FAILURE
        }
    }
}

fn lint(args: &[String]) -> ExitCode {
    let mut json_path: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => match it.next() {
                Some(p) => json_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--json requires a path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown lint argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    // Run from the workspace root regardless of invocation directory.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("xtask lives two levels below the workspace root")
        .to_path_buf();

    let report = match simlint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lint: failed to read workspace: {e}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(path) = json_path {
        if let Err(e) = fs::write(&path, report.to_json()) {
            eprintln!("lint: failed to write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }

    for d in &report.diagnostics {
        eprintln!("{d}");
    }
    if report.clean() {
        eprintln!("lint: {} files clean", report.files_scanned);
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "lint: {} diagnostic(s) across {} files",
            report.diagnostics.len(),
            report.files_scanned
        );
        ExitCode::FAILURE
    }
}
