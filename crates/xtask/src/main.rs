//! `xtask` — dependency-free repo maintenance tasks.
//!
//! The one task so far is the determinism lint:
//!
//! ```text
//! cargo run -p xtask -- lint
//! ```
//!
//! The whole simulation must be a pure function of its inputs: two runs
//! of the same spec must agree bit-for-bit regardless of thread count,
//! hash seeds or wall-clock. The type system can't enforce that, so this
//! is a line/token lint over the workspace sources for the constructs
//! that have historically broken it:
//!
//! * `hash-collections` — `HashMap`/`HashSet` in the determinism-critical
//!   crates (`netsim`, `core`, `httpserver`, `httpclient`). Rust's hash
//!   maps use a random per-process seed; any iteration leaks that seed's
//!   order into the run. Use `BTreeMap`/`BTreeSet`, or carry an
//!   `xtask: allow(hash-collections)` comment arguing the map is
//!   keyed-lookup-only.
//! * `wall-clock` — `Instant::now` / `SystemTime` anywhere: simulated
//!   code must read [`SimTime`] from the simulator, never the host clock.
//!   (Benchmark timing is the legitimate exception, allowlisted in
//!   `xtask-allow.txt`.)
//! * `thread-rng` — `thread_rng` anywhere: all randomness must flow from
//!   explicit seeds.
//! * `float-time-cmp` — `==`/`!=` on the same line as `as_secs_f64`:
//!   exact comparison of float-converted simulated time; compare the
//!   integer nanosecond values instead.
//! * `unwrap-impair` — `.unwrap()` in the impairment pipeline
//!   (`netsim/src/impair.rs`): a panic mid-impairment tears down a cell
//!   asymmetrically and poisons the shared thread pool.
//! * `probe-determinism` — any wall-clock read or hash collection in the
//!   flight recorder (`netsim/src/probe.rs`), *including* bare imports:
//!   probe output is digest-compared byte-for-byte in CI, so even a
//!   lookup-only hash map or a host timestamp in its analysis path would
//!   eventually leak nondeterminism into the PROBE documents. No
//!   suppressions — use `Vec`/`BTreeMap` and `SimTime`.
//! * `hot-path-alloc` — `Box::new`, `Vec::new` / `vec![`, or a
//!   `payload.clone()` in the per-segment kernel paths (`netsim`'s
//!   `tcp.rs`, `link.rs`, `sim.rs`). These files run once per simulated
//!   packet; the microbench suite gates allocations/packet, and a stray
//!   allocation in a segment path is a throughput regression the type
//!   system won't catch. Use the segment pool (`Bytes::pooled_*`), the
//!   kernel's `Effects` pool, or reuse a scratch buffer. Cold paths
//!   (constructors, setup) carry an `xtask: allow(hot-path-alloc)`
//!   comment stating why they are off the per-segment path.
//!
//! Suppression: a `xtask: allow(<rule>)` comment on the flagged line or
//! in the comment block immediately above it, or a `<rule> <path>` line
//! in the committed `xtask-allow.txt` at the repo root. Test code
//! (`tests/` directories and `#[cfg(test)]` items) is skipped.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// One lint rule: a name, the substrings that trigger it, and the crate
/// directories (under `crates/`) it applies to (`None` = everywhere).
struct Rule {
    name: &'static str,
    /// The line (comments stripped) triggers if it contains any of these.
    needles: &'static [&'static str],
    /// And, when non-empty, all of these.
    also: &'static [&'static str],
    crates: Option<&'static [&'static str]>,
    /// Restrict to specific files (workspace-relative), e.g. the
    /// impairment pipeline or the per-segment kernel paths. Empty =
    /// every file.
    files: &'static [&'static str],
    /// Skip `use` declarations — an import alone creates nothing; every
    /// actual use of the type still triggers.
    skip_use_lines: bool,
}

const RULES: &[Rule] = &[
    Rule {
        name: "hash-collections",
        needles: &["HashMap", "HashSet"],
        also: &[],
        crates: Some(&["netsim", "core", "httpserver", "httpclient", "httpmux"]),
        files: &[],
        skip_use_lines: true,
    },
    Rule {
        name: "wall-clock",
        needles: &["Instant::now", "SystemTime"],
        also: &[],
        crates: None,
        files: &[],
        skip_use_lines: true,
    },
    Rule {
        name: "thread-rng",
        needles: &["thread_rng"],
        also: &[],
        crates: None,
        files: &[],
        skip_use_lines: false,
    },
    Rule {
        name: "float-time-cmp",
        needles: &["==", "!="],
        also: &["as_secs_f64"],
        crates: None,
        files: &[],
        skip_use_lines: false,
    },
    Rule {
        name: "unwrap-impair",
        needles: &[".unwrap("],
        also: &[],
        crates: None,
        files: &["crates/netsim/src/impair.rs"],
        skip_use_lines: false,
    },
    Rule {
        name: "probe-determinism",
        needles: &["HashMap", "HashSet", "Instant::now", "SystemTime"],
        also: &[],
        crates: None,
        files: &["crates/netsim/src/probe.rs"],
        skip_use_lines: false,
    },
    Rule {
        name: "hot-path-alloc",
        needles: &["Box::new", "Vec::new", "vec![", "payload.clone()"],
        also: &[],
        crates: None,
        files: &[
            "crates/netsim/src/tcp.rs",
            "crates/netsim/src/link.rs",
            "crates/netsim/src/sim.rs",
            "crates/httpmux/src/frame.rs",
            "crates/httpmux/src/conn.rs",
        ],
        skip_use_lines: false,
    },
];

/// A `<rule> <path>` entry from `xtask-allow.txt`.
struct FileAllow {
    rule: String,
    path: String,
    used: bool,
}

struct Finding {
    path: String,
    line_no: usize,
    rule: &'static str,
    text: String,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(),
        _ => {
            eprintln!("usage: cargo run -p xtask -- lint");
            ExitCode::from(2)
        }
    }
}

fn lint() -> ExitCode {
    let root = workspace_root();
    let mut allows = load_file_allows(&root);
    let mut files = Vec::new();
    collect_rs_files(&root.join("crates"), &root, &mut files);
    files.sort();

    let mut findings = Vec::new();
    let mut scanned = 0usize;
    for rel in &files {
        // The linter's own rule table spells out the needles it hunts.
        if rel.starts_with("crates/xtask/") {
            continue;
        }
        scanned += 1;
        let text = match fs::read_to_string(root.join(rel)) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("xtask lint: cannot read {rel}: {e}");
                return ExitCode::FAILURE;
            }
        };
        lint_file(rel, &text, &mut allows, &mut findings);
    }

    for f in &findings {
        println!("{}:{}: [{}] {}", f.path, f.line_no, f.rule, f.text.trim());
    }
    for a in allows.iter().filter(|a| !a.used) {
        println!("xtask-allow.txt: unused entry `{} {}`", a.rule, a.path);
    }
    let unused_allows = allows.iter().filter(|a| !a.used).count();
    if findings.is_empty() && unused_allows == 0 {
        println!("xtask lint: {scanned} files clean");
        ExitCode::SUCCESS
    } else {
        println!(
            "xtask lint: {} violation(s), {} stale allowlist entr(ies) in {} files",
            findings.len(),
            unused_allows,
            scanned
        );
        ExitCode::FAILURE
    }
}

/// The workspace root: walk up from this binary's manifest.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .expect("crates/xtask has a workspace root two levels up")
        .to_path_buf()
}

fn load_file_allows(root: &Path) -> Vec<FileAllow> {
    let mut out = Vec::new();
    let Ok(text) = fs::read_to_string(root.join("xtask-allow.txt")) else {
        return out;
    };
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        if let (Some(rule), Some(path)) = (parts.next(), parts.next()) {
            out.push(FileAllow {
                rule: rule.to_string(),
                path: path.to_string(),
                used: false,
            });
        }
    }
    out
}

/// Every `.rs` file under `dir` (recursively), as workspace-relative
/// paths, skipping `target/` and `tests/` directories.
fn collect_rs_files(dir: &Path, root: &Path, out: &mut Vec<String>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "tests" {
                continue;
            }
            collect_rs_files(&path, root, out);
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .expect("file under workspace root")
                .to_string_lossy()
                .replace('\\', "/");
            out.push(rel);
        }
    }
}

/// The crate directory name of a workspace-relative path
/// (`crates/netsim/src/tcp.rs` → `netsim`).
fn crate_dir(rel: &str) -> &str {
    rel.strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("")
}

fn lint_file(rel: &str, text: &str, allows: &mut [FileAllow], findings: &mut Vec<Finding>) {
    let cdir = crate_dir(rel);
    // Allow markers collected from the comment block directly above the
    // current code line.
    let mut pending_allows: BTreeSet<String> = BTreeSet::new();
    // Brace depth of `#[cfg(test)]` items still open; while positive,
    // everything is test code.
    let mut test_depth: i64 = 0;
    let mut in_test_item = false;
    // Attribute seen, waiting for the item's first `{`.
    let mut test_armed = false;

    for (i, raw) in text.lines().enumerate() {
        let trimmed = raw.trim_start();
        let (code, comment) = split_comment(raw);

        if in_test_item || test_armed {
            // Track braces in code (strings with braces inside test code
            // would miscount; none of the workspace sources do this in a
            // way that unbalances an item).
            for c in code.chars() {
                match c {
                    '{' => {
                        test_depth += 1;
                        test_armed = false;
                        in_test_item = true;
                    }
                    '}' => test_depth -= 1,
                    _ => {}
                }
            }
            if in_test_item && test_depth <= 0 {
                in_test_item = false;
                test_depth = 0;
            }
            continue;
        }
        if trimmed.starts_with("#[cfg(test)]") {
            test_armed = true;
            continue;
        }

        // Collect allow markers: from a standalone comment line they
        // apply to the next code line; from a trailing comment to this
        // line only.
        let mut line_allows: BTreeSet<String> = std::mem::take(&mut pending_allows);
        for marker in allow_markers(comment) {
            line_allows.insert(marker);
        }
        if code.trim().is_empty() {
            // Pure comment (or blank) line: markers carry forward.
            pending_allows = line_allows;
            continue;
        }

        for rule in RULES {
            if let Some(crates) = rule.crates {
                if !crates.contains(&cdir) {
                    continue;
                }
            }
            if !rule.files.is_empty() && !rule.files.contains(&rel) {
                continue;
            }
            if rule.skip_use_lines && trimmed.starts_with("use ") {
                continue;
            }
            let hit = rule.needles.iter().any(|n| code.contains(n))
                && rule.also.iter().all(|n| code.contains(n));
            if !hit {
                continue;
            }
            if line_allows.contains(rule.name) {
                continue;
            }
            if let Some(a) = allows
                .iter_mut()
                .find(|a| a.rule == rule.name && a.path == rel)
            {
                a.used = true;
                continue;
            }
            findings.push(Finding {
                path: rel.to_string(),
                line_no: i + 1,
                rule: rule.name,
                text: raw.to_string(),
            });
        }
    }
}

/// Split a source line at the start of its `//` comment (ignoring `//`
/// inside string literals).
fn split_comment(line: &str) -> (&str, &str) {
    let bytes = line.as_bytes();
    let mut in_str = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_str => i += 1, // skip the escaped byte
            b'"' => in_str = !in_str,
            b'/' if !in_str && i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                return (&line[..i], &line[i..]);
            }
            _ => {}
        }
        i += 1;
    }
    (line, "")
}

/// Every `xtask: allow(<rule>)` marker in a comment.
fn allow_markers(comment: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = comment;
    while let Some(pos) = rest.find("xtask: allow(") {
        let after = &rest[pos + "xtask: allow(".len()..];
        if let Some(end) = after.find(')') {
            out.push(after[..end].trim().to_string());
            rest = &after[end..];
        } else {
            break;
        }
    }
    out
}
