//! Property tests for the DEFLATE implementation: every input must
//! survive a compress/decompress roundtrip at every level, in both the
//! raw and zlib framings, and compressed output must respect the format's
//! worst-case bounds.

use flate::{deflate, inflate, Level};
use proptest::prelude::*;

fn levels() -> impl Strategy<Value = Level> {
    prop_oneof![
        Just(Level::Store),
        Just(Level::Fast),
        Just(Level::Default),
        Just(Level::Best),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn raw_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..8192), level in levels()) {
        let compressed = deflate(&data, level);
        let restored = inflate(&compressed).expect("inflate");
        prop_assert_eq!(restored, data);
    }

    #[test]
    fn zlib_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..4096), level in levels()) {
        let z = flate::zlib::compress(&data, level);
        let restored = flate::zlib::decompress(&z).expect("zlib decompress");
        prop_assert_eq!(restored, data);
    }

    #[test]
    fn structured_text_roundtrip(
        words in proptest::collection::vec("[a-z<>/=\" ]{1,12}", 0..400),
        level in levels(),
    ) {
        let text = words.concat();
        let compressed = deflate(text.as_bytes(), level);
        prop_assert_eq!(inflate(&compressed).unwrap(), text.as_bytes());
        // Repetitive tag-like text must actually compress once it is big
        // enough to amortize headers.
        if text.len() > 2048 && level != Level::Store {
            prop_assert!(compressed.len() < text.len());
        }
    }

    #[test]
    fn expansion_is_bounded(data in proptest::collection::vec(any::<u8>(), 0..4096), level in levels()) {
        // DEFLATE's stored fallback bounds expansion: 5 bytes per 64K
        // block plus a few bits of framing.
        let compressed = deflate(&data, level);
        prop_assert!(
            compressed.len() <= data.len() + 64,
            "expanded {} -> {}",
            data.len(),
            compressed.len()
        );
    }

    #[test]
    fn truncation_never_panics(data in proptest::collection::vec(any::<u8>(), 0..2048), cut in 0usize..2048) {
        let compressed = deflate(&data, Level::Default);
        let cut = cut.min(compressed.len());
        // Must return (Ok or Err), never panic.
        let _ = inflate(&compressed[..cut]);
        let _ = flate::inflate::inflate_prefix(&compressed[..cut]);
    }

    #[test]
    fn garbage_never_panics(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = inflate(&data);
        let _ = flate::zlib::decompress(&data);
        let _ = flate::zlib::decompress_prefix(&data);
    }

    #[test]
    fn prefix_decode_is_a_prefix(data in proptest::collection::vec(any::<u8>(), 1..4096), cut_pct in 10usize..100) {
        let compressed = deflate(&data, Level::Default);
        let cut = compressed.len() * cut_pct / 100;
        if let Ok(partial) = flate::inflate::inflate_prefix(&compressed[..cut]) {
            prop_assert!(partial.len() <= data.len());
            prop_assert_eq!(&data[..partial.len()], &partial[..]);
        }
    }

    #[test]
    fn checksums_detect_single_bit_flips(
        data in proptest::collection::vec(any::<u8>(), 1..512),
        byte_idx in any::<usize>(),
        bit in 0u8..8,
    ) {
        let mut copy = data.clone();
        let idx = byte_idx % copy.len();
        copy[idx] ^= 1 << bit;
        prop_assert_ne!(flate::adler32(&data), flate::adler32(&copy));
        prop_assert_ne!(flate::crc32(&data), flate::crc32(&copy));
    }
}
