//! Property-style tests for the DEFLATE implementation, driven by a
//! deterministic seeded PRNG (the build environment has no crates.io
//! access, so `proptest` is unavailable): every input must survive a
//! compress/decompress roundtrip at every level, in both the raw and
//! zlib framings, and compressed output must respect the format's
//! worst-case bounds.

use flate::{deflate, inflate, Level};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const LEVELS: [Level; 4] = [Level::Store, Level::Fast, Level::Default, Level::Best];

fn random_bytes(rng: &mut SmallRng, max_len: usize) -> Vec<u8> {
    let len = rng.gen_range(0..max_len);
    (0..len).map(|_| rng.gen()).collect()
}

#[test]
fn raw_roundtrip() {
    let mut rng = SmallRng::seed_from_u64(0x0F1A_7E01);
    for case in 0..64 {
        let data = random_bytes(&mut rng, 8192);
        let level = LEVELS[case % LEVELS.len()];
        let compressed = deflate(&data, level);
        let restored = inflate(&compressed).expect("inflate");
        assert_eq!(restored, data, "case {case} level {level:?}");
    }
}

#[test]
fn zlib_roundtrip() {
    let mut rng = SmallRng::seed_from_u64(0x0F1A_7E02);
    for case in 0..64 {
        let data = random_bytes(&mut rng, 4096);
        let level = LEVELS[case % LEVELS.len()];
        let z = flate::zlib::compress(&data, level);
        let restored = flate::zlib::decompress(&z).expect("zlib decompress");
        assert_eq!(restored, data, "case {case} level {level:?}");
    }
}

#[test]
fn structured_text_roundtrip() {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz<>/=\" ";
    let mut rng = SmallRng::seed_from_u64(0x0F1A_7E03);
    for case in 0..64 {
        let words = rng.gen_range(0..400usize);
        let mut text = String::new();
        for _ in 0..words {
            let word_len = rng.gen_range(1..=12usize);
            for _ in 0..word_len {
                text.push(ALPHABET[rng.gen_range(0..ALPHABET.len())] as char);
            }
        }
        let level = LEVELS[case % LEVELS.len()];
        let compressed = deflate(text.as_bytes(), level);
        assert_eq!(inflate(&compressed).unwrap(), text.as_bytes());
        // Repetitive tag-like text must actually compress once it is big
        // enough to amortize headers.
        if text.len() > 2048 && level != Level::Store {
            assert!(compressed.len() < text.len(), "case {case}");
        }
    }
}

#[test]
fn expansion_is_bounded() {
    let mut rng = SmallRng::seed_from_u64(0x0F1A_7E04);
    for case in 0..64 {
        let data = random_bytes(&mut rng, 4096);
        let level = LEVELS[case % LEVELS.len()];
        // DEFLATE's stored fallback bounds expansion: 5 bytes per 64K
        // block plus a few bits of framing.
        let compressed = deflate(&data, level);
        assert!(
            compressed.len() <= data.len() + 64,
            "expanded {} -> {}",
            data.len(),
            compressed.len()
        );
    }
}

#[test]
fn truncation_never_panics() {
    let mut rng = SmallRng::seed_from_u64(0x0F1A_7E05);
    for _ in 0..64 {
        let data = random_bytes(&mut rng, 2048);
        let compressed = deflate(&data, Level::Default);
        let cut = rng.gen_range(0..2048usize).min(compressed.len());
        // Must return (Ok or Err), never panic.
        let _ = inflate(&compressed[..cut]);
        let _ = flate::inflate::inflate_prefix(&compressed[..cut]);
    }
}

#[test]
fn garbage_never_panics() {
    let mut rng = SmallRng::seed_from_u64(0x0F1A_7E06);
    for _ in 0..64 {
        let data = random_bytes(&mut rng, 512);
        let _ = inflate(&data);
        let _ = flate::zlib::decompress(&data);
        let _ = flate::zlib::decompress_prefix(&data);
    }
}

#[test]
fn prefix_decode_is_a_prefix() {
    let mut rng = SmallRng::seed_from_u64(0x0F1A_7E07);
    for _ in 0..64 {
        let len = rng.gen_range(1..4096usize);
        let data: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
        let compressed = deflate(&data, Level::Default);
        let cut_pct = rng.gen_range(10..100usize);
        let cut = compressed.len() * cut_pct / 100;
        if let Ok(partial) = flate::inflate::inflate_prefix(&compressed[..cut]) {
            assert!(partial.len() <= data.len());
            assert_eq!(&data[..partial.len()], &partial[..]);
        }
    }
}

#[test]
fn checksums_detect_single_bit_flips() {
    let mut rng = SmallRng::seed_from_u64(0x0F1A_7E08);
    for _ in 0..64 {
        let len = rng.gen_range(1..512usize);
        let data: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
        let mut copy = data.clone();
        let idx = rng.gen_range(0..copy.len());
        let bit = rng.gen_range(0..8u8);
        copy[idx] ^= 1 << bit;
        assert_ne!(flate::adler32(&data), flate::adler32(&copy));
        assert_ne!(flate::crc32(&data), flate::crc32(&copy));
    }
}
