//! Bit-level I/O with DEFLATE's packing conventions.
//!
//! DEFLATE packs bits LSB-first within each byte. Huffman codes are the one
//! exception: they are stored most-significant-code-bit first, which callers
//! handle by reversing the code's bits before calling [`BitWriter::write_bits`].

/// Writes a bit stream LSB-first into a byte vector.
#[derive(Debug, Default)]
pub struct BitWriter {
    out: Vec<u8>,
    /// Bits accumulated but not yet flushed (low bits are oldest).
    bit_buf: u64,
    bit_count: u32,
}

impl BitWriter {
    /// Create a new, empty instance.
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// Append the low `count` bits of `bits`, LSB first.
    pub fn write_bits(&mut self, bits: u32, count: u32) {
        debug_assert!(count <= 32);
        debug_assert!(count == 32 || bits < (1 << count), "value wider than count");
        self.bit_buf |= (bits as u64) << self.bit_count;
        self.bit_count += count;
        while self.bit_count >= 8 {
            self.out.push((self.bit_buf & 0xFF) as u8);
            self.bit_buf >>= 8;
            self.bit_count -= 8;
        }
    }

    /// Append a Huffman code of `len` bits: DEFLATE stores these with the
    /// first (most significant) code bit first, so the code is bit-reversed
    /// into LSB-first order.
    pub fn write_code(&mut self, code: u32, len: u32) {
        debug_assert!(len <= 15 && len > 0);
        let rev = reverse_bits(code, len);
        self.write_bits(rev, len);
    }

    /// Pad with zero bits to the next byte boundary.
    pub fn align_byte(&mut self) {
        if self.bit_count > 0 {
            self.out.push((self.bit_buf & 0xFF) as u8);
            self.bit_buf = 0;
            self.bit_count = 0;
        }
    }

    /// Append raw bytes; the stream must be byte-aligned.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        debug_assert_eq!(self.bit_count, 0, "write_bytes requires byte alignment");
        self.out.extend_from_slice(bytes);
    }

    /// Number of whole bytes emitted so far (excluding buffered bits).
    pub fn byte_len(&self) -> usize {
        self.out.len()
    }

    /// Finish the stream, flushing any partial byte.
    pub fn finish(mut self) -> Vec<u8> {
        self.align_byte();
        self.out
    }
}

/// Reads a bit stream LSB-first from a byte slice.
#[derive(Debug)]
pub struct BitReader<'a> {
    data: &'a [u8],
    /// Next byte index.
    pos: usize,
    bit_buf: u64,
    bit_count: u32,
}

/// Error returned when the input ends mid-stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnexpectedEof;

impl<'a> BitReader<'a> {
    /// Create a new, empty instance.
    pub fn new(data: &'a [u8]) -> Self {
        BitReader {
            data,
            pos: 0,
            bit_buf: 0,
            bit_count: 0,
        }
    }

    fn fill(&mut self) {
        while self.bit_count <= 56 && self.pos < self.data.len() {
            self.bit_buf |= (self.data[self.pos] as u64) << self.bit_count;
            self.pos += 1;
            self.bit_count += 8;
        }
    }

    /// Read `count` bits, LSB first.
    pub fn read_bits(&mut self, count: u32) -> Result<u32, UnexpectedEof> {
        debug_assert!(count <= 32);
        self.fill();
        if self.bit_count < count {
            return Err(UnexpectedEof);
        }
        let v = (self.bit_buf & ((1u64 << count) - 1)) as u32;
        let v = if count == 0 { 0 } else { v };
        self.bit_buf >>= count;
        self.bit_count -= count;
        Ok(v)
    }

    /// Read a single bit.
    pub fn read_bit(&mut self) -> Result<u32, UnexpectedEof> {
        self.read_bits(1)
    }

    /// Discard bits up to the next byte boundary.
    pub fn align_byte(&mut self) {
        let drop = self.bit_count % 8;
        self.bit_buf >>= drop;
        self.bit_count -= drop;
    }

    /// Read `n` raw bytes; the stream must be byte-aligned.
    pub fn read_bytes(&mut self, n: usize) -> Result<Vec<u8>, UnexpectedEof> {
        debug_assert_eq!(self.bit_count % 8, 0);
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let b = self.read_bits(8)? as u8;
            out.push(b);
        }
        Ok(out)
    }

    /// True when no more bits remain.
    pub fn is_empty(&mut self) -> bool {
        self.fill();
        self.bit_count == 0
    }
}

/// Reverse the low `len` bits of `v`.
pub fn reverse_bits(v: u32, len: u32) -> u32 {
    let mut r = 0;
    for i in 0..len {
        r |= ((v >> i) & 1) << (len - 1 - i);
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_widths() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0b11110000, 8);
        w.write_bits(0b1, 1);
        w.write_bits(12345, 20);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bits(8).unwrap(), 0b11110000);
        assert_eq!(r.read_bits(1).unwrap(), 0b1);
        assert_eq!(r.read_bits(20).unwrap(), 12345);
    }

    #[test]
    fn lsb_first_packing() {
        let mut w = BitWriter::new();
        // 1, then 0, then 1: byte should be 0b...101 = 0x05.
        w.write_bits(1, 1);
        w.write_bits(0, 1);
        w.write_bits(1, 1);
        assert_eq!(w.finish(), vec![0x05]);
    }

    #[test]
    fn align_and_raw_bytes() {
        let mut w = BitWriter::new();
        w.write_bits(0b1, 1);
        w.align_byte();
        w.write_bytes(b"AB");
        let bytes = w.finish();
        assert_eq!(bytes, vec![0x01, b'A', b'B']);
        let mut r = BitReader::new(&bytes);
        r.read_bit().unwrap();
        r.align_byte();
        assert_eq!(r.read_bytes(2).unwrap(), b"AB");
    }

    #[test]
    fn reverse() {
        assert_eq!(reverse_bits(0b110, 3), 0b011);
        assert_eq!(reverse_bits(0b1, 1), 0b1);
        assert_eq!(reverse_bits(0b10000000, 8), 0b00000001);
    }

    #[test]
    fn eof_detection() {
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(r.read_bits(8).unwrap(), 0xFF);
        assert!(r.read_bits(1).is_err());
        assert!(r.is_empty());
    }

    #[test]
    fn code_written_msb_first() {
        let mut w = BitWriter::new();
        // A 3-bit code 0b110 must appear as bits 1,1,0 in stream order,
        // i.e. LSB-first packing of 0b011.
        w.write_code(0b110, 3);
        let bytes = w.finish();
        assert_eq!(bytes, vec![0b011]);
    }
}
