//! Canonical Huffman coding: length-limited code construction (encoder) and
//! canonical decoding tables (decoder), per RFC 1951 §3.2.2.

/// Build length-limited Huffman code lengths from symbol frequencies.
///
/// Uses the standard heap-based Huffman construction followed by the
/// depth-limiting adjustment zlib uses: overlong codes are shortened and the
/// Kraft inequality restored by demoting shorter codes. The result is
/// optimal or near-optimal and always valid.
///
/// Symbols with zero frequency receive length 0 (no code). If only one
/// symbol has nonzero frequency it receives length 1, as DEFLATE requires at
/// least one bit per coded symbol.
pub fn build_lengths(freqs: &[u32], max_len: u32) -> Vec<u32> {
    let n = freqs.len();
    let mut lengths = vec![0u32; n];
    let active: Vec<usize> = (0..n).filter(|&i| freqs[i] > 0).collect();
    match active.len() {
        0 => return lengths,
        1 => {
            lengths[active[0]] = 1;
            return lengths;
        }
        _ => {}
    }

    // Heap-based Huffman tree; node = (freq, tie, index). `tie` keeps the
    // construction deterministic.
    #[derive(PartialEq, Eq, PartialOrd, Ord)]
    struct Node {
        freq: u64,
        tie: u32,
        idx: usize,
    }
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    // Tree storage: leaves 0..n, internal nodes appended after.
    let mut parent = vec![usize::MAX; n];
    let mut heap = BinaryHeap::new();
    let mut tie = 0u32;
    for &i in &active {
        heap.push(Reverse(Node {
            freq: freqs[i] as u64,
            tie: {
                tie += 1;
                tie
            },
            idx: i,
        }));
    }
    let mut next_idx = n;
    while heap.len() > 1 {
        let Reverse(a) = heap.pop().unwrap();
        let Reverse(b) = heap.pop().unwrap();
        parent.push(usize::MAX);
        parent[a.idx] = next_idx;
        parent[b.idx] = next_idx;
        heap.push(Reverse(Node {
            freq: a.freq + b.freq,
            tie: {
                tie += 1;
                tie
            },
            idx: next_idx,
        }));
        next_idx += 1;
    }

    // Depth of each leaf.
    let mut bl_count = vec![0u32; (max_len + 1) as usize];
    for &i in &active {
        let mut d = 0;
        let mut j = i;
        while parent[j] != usize::MAX {
            j = parent[j];
            d += 1;
        }
        let d = d.min(max_len);
        lengths[i] = d;
        bl_count[d as usize] += 1;
    }

    // Restore the Kraft sum if the depth clamp overflowed it.
    // Kraft sum in units of 2^-max_len.
    let full = 1u64 << max_len;
    let mut kraft: u64 = active.iter().map(|&i| full >> lengths[i]).sum();
    while kraft > full {
        // Take a code at the deepest level that has room to grow... in the
        // clamped case we must *lengthen* some code to reduce its weight:
        // find a symbol with length < max_len whose subtree weight we can
        // reduce by moving it one level down. zlib's approach: find the
        // longest length l < max_len with bl_count[l] > 0, move one code
        // from l to l+1? That *reduces* kraft by 2^-(l+1)... we need the
        // standard fix: repeatedly find a leaf at depth < max_len,
        // increment its length.
        let mut best: Option<usize> = None;
        for &i in &active {
            if lengths[i] < max_len {
                match best {
                    None => best = Some(i),
                    Some(b) => {
                        // Prefer lengthening the least frequent symbol.
                        if (freqs[i], i) < (freqs[b], b) {
                            best = Some(i);
                        }
                    }
                }
            }
        }
        let i = best.expect("kraft overflow must be fixable");
        kraft -= full >> lengths[i];
        lengths[i] += 1;
        kraft += full >> lengths[i];
    }

    lengths
}

/// Assign canonical code values to a set of code lengths (RFC 1951
/// §3.2.2). Returns, per symbol, the code value (0 where length is 0).
pub fn assign_codes(lengths: &[u32]) -> Vec<u32> {
    let max_len = lengths.iter().copied().max().unwrap_or(0);
    let mut bl_count = vec![0u32; (max_len + 1) as usize];
    for &l in lengths {
        if l > 0 {
            bl_count[l as usize] += 1;
        }
    }
    let mut next_code = vec![0u32; (max_len + 2) as usize];
    let mut code = 0u32;
    for bits in 1..=max_len {
        code = (code + bl_count[(bits - 1) as usize]) << 1;
        next_code[bits as usize] = code;
    }
    lengths
        .iter()
        .map(|&l| {
            if l == 0 {
                0
            } else {
                let c = next_code[l as usize];
                next_code[l as usize] += 1;
                c
            }
        })
        .collect()
}

/// A canonical Huffman decoder.
#[derive(Debug, Clone)]
pub struct Decoder {
    /// For each length 1..=15: the first canonical code of that length and
    /// the index into `symbols` where codes of that length begin.
    first_code: [u32; 16],
    first_index: [u32; 16],
    count: [u32; 16],
    /// Symbols ordered by (length, symbol) — canonical order.
    symbols: Vec<u16>,
}

/// Error constructing or using a Huffman decoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HuffError {
    /// The code-length set violates the Kraft inequality (over-subscribed).
    Oversubscribed,
    /// No symbols were assigned codes.
    Empty,
    /// The bit stream contained a code not present in the table.
    BadCode,
}

impl Decoder {
    /// Build a decoder from per-symbol code lengths.
    ///
    /// Incomplete codes (Kraft sum < 1) are accepted — RFC 1951 permits the
    /// single-symbol case and some encoders emit incomplete distance
    /// tables — but over-subscribed tables are rejected.
    pub fn new(lengths: &[u32]) -> Result<Decoder, HuffError> {
        let mut count = [0u32; 16];
        for &l in lengths {
            if l > 15 {
                return Err(HuffError::Oversubscribed);
            }
            if l > 0 {
                count[l as usize] += 1;
            }
        }
        if count.iter().all(|&c| c == 0) {
            return Err(HuffError::Empty);
        }
        // Kraft check.
        let mut left = 1i64;
        for &c in &count[1..=15] {
            left <<= 1;
            left -= c as i64;
            if left < 0 {
                return Err(HuffError::Oversubscribed);
            }
        }

        let mut first_code = [0u32; 16];
        let mut first_index = [0u32; 16];
        let mut code = 0u32;
        let mut index = 0u32;
        for bits in 1..=15usize {
            code <<= 1;
            first_code[bits] = code;
            first_index[bits] = index;
            code += count[bits];
            index += count[bits];
        }

        let mut symbols = vec![0u16; index as usize];
        let mut next = first_index;
        for (sym, &l) in lengths.iter().enumerate() {
            if l > 0 {
                symbols[next[l as usize] as usize] = sym as u16;
                next[l as usize] += 1;
            }
        }

        Ok(Decoder {
            first_code,
            first_index,
            count,
            symbols,
        })
    }

    /// Decode one symbol by pulling bits from `next_bit` (which yields the
    /// stream's next bit, MSB-of-code-first as DEFLATE stores codes).
    pub fn decode<E>(
        &self,
        mut next_bit: impl FnMut() -> Result<u32, E>,
    ) -> Result<Result<u16, HuffError>, E> {
        let mut code = 0u32;
        for bits in 1..=15usize {
            code = (code << 1) | next_bit()?;
            let c = self.count[bits];
            if c > 0 {
                let first = self.first_code[bits];
                if code < first + c {
                    if code < first {
                        return Ok(Err(HuffError::BadCode));
                    }
                    let idx = self.first_index[bits] + (code - first);
                    return Ok(Ok(self.symbols[idx as usize]));
                }
            }
        }
        Ok(Err(HuffError::BadCode))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_codes_rfc_example() {
        // RFC 1951 §3.2.2 example: lengths (3,3,3,3,3,2,4,4)
        // -> codes 010,011,100,101,110,00,1110,1111.
        let lengths = [3, 3, 3, 3, 3, 2, 4, 4];
        let codes = assign_codes(&lengths);
        assert_eq!(
            codes,
            vec![0b010, 0b011, 0b100, 0b101, 0b110, 0b00, 0b1110, 0b1111]
        );
    }

    #[test]
    fn build_lengths_simple() {
        // Frequencies heavily skewed: most frequent symbol gets the
        // shortest code.
        let freqs = [100, 10, 10, 1];
        let lengths = build_lengths(&freqs, 15);
        assert!(lengths[0] < lengths[3]);
        // Kraft equality for a complete code.
        let kraft: f64 = lengths.iter().map(|&l| 0.5f64.powi(l as i32)).sum();
        assert!((kraft - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_symbol_gets_one_bit() {
        let freqs = [0, 7, 0];
        let lengths = build_lengths(&freqs, 15);
        assert_eq!(lengths, vec![0, 1, 0]);
    }

    #[test]
    fn length_limit_respected() {
        // Fibonacci-ish frequencies force deep trees; limit to 5 bits.
        let freqs: Vec<u32> = [1, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89].to_vec();
        let lengths = build_lengths(&freqs, 5);
        assert!(lengths.iter().all(|&l| l <= 5 && l > 0));
        let full = 1u32 << 5;
        let kraft: u32 = lengths.iter().map(|&l| full >> l).sum();
        assert!(kraft <= full, "kraft must hold after limiting");
    }

    #[test]
    fn decoder_roundtrip() {
        let lengths = [3u32, 3, 3, 3, 3, 2, 4, 4];
        let codes = assign_codes(&lengths);
        let dec = Decoder::new(&lengths).unwrap();
        for sym in 0..lengths.len() {
            let code = codes[sym];
            let len = lengths[sym];
            let mut bits: Vec<u32> = (0..len).rev().map(|i| (code >> i) & 1).collect();
            bits.reverse(); // we'll pop from the back
            let got = dec
                .decode(|| -> Result<u32, ()> { Ok(bits.pop().unwrap()) })
                .unwrap()
                .unwrap();
            assert_eq!(got as usize, sym);
        }
    }

    #[test]
    fn oversubscribed_rejected() {
        // Three 1-bit codes is impossible.
        assert_eq!(
            Decoder::new(&[1, 1, 1]).unwrap_err(),
            HuffError::Oversubscribed
        );
    }

    #[test]
    fn encoder_decoder_agree_on_random_frequencies() {
        // Deterministic pseudo-random frequencies.
        let mut x = 0x2545F491u64;
        let freqs: Vec<u32> = (0..100)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x % 1000) as u32
            })
            .collect();
        let lengths = build_lengths(&freqs, 15);
        let codes = assign_codes(&lengths);
        let dec = Decoder::new(&lengths).unwrap();
        for sym in 0..freqs.len() {
            if lengths[sym] == 0 {
                continue;
            }
            let code = codes[sym];
            let len = lengths[sym];
            let mut bits: Vec<u32> = (0..len).map(|i| (code >> (len - 1 - i)) & 1).collect();
            let mut iter = bits.drain(..);
            let got = dec
                .decode(|| -> Result<u32, ()> { Ok(iter.next().unwrap()) })
                .unwrap()
                .unwrap();
            assert_eq!(got as usize, sym);
        }
    }
}
