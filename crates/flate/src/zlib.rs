//! The zlib container format (RFC 1950): a 2-byte header, a DEFLATE stream,
//! and an Adler-32 trailer. This is the `deflate` content-coding HTTP/1.1
//! actually negotiates (RFC 2068 defines "deflate" as the zlib format).

use crate::checksum::adler32;
use crate::deflate::{deflate, Level};
use crate::inflate::{inflate, InflateError};

/// Errors specific to the zlib wrapper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZlibError {
    /// Header malformed or using an unsupported method/window.
    BadHeader,
    /// FCHECK failed: CMF/FLG is not a multiple of 31.
    BadHeaderCheck,
    /// A preset dictionary was requested (unsupported).
    NeedsDictionary,
    /// The embedded DEFLATE stream is invalid.
    Deflate(InflateError),
    /// Adler-32 of the decompressed data does not match the trailer.
    BadChecksum,
    /// Stream ends before the 4-byte trailer.
    Truncated,
}

impl std::fmt::Display for ZlibError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ZlibError::BadHeader => f.write_str("bad zlib header"),
            ZlibError::BadHeaderCheck => f.write_str("zlib header check failed"),
            ZlibError::NeedsDictionary => f.write_str("preset dictionary unsupported"),
            ZlibError::Deflate(e) => write!(f, "deflate error: {e}"),
            ZlibError::BadChecksum => f.write_str("adler32 mismatch"),
            ZlibError::Truncated => f.write_str("truncated zlib stream"),
        }
    }
}

impl std::error::Error for ZlibError {}

/// Compress into the zlib format.
pub fn compress(data: &[u8], level: Level) -> Vec<u8> {
    // CMF: method 8 (deflate), window 32K (CINFO=7).
    let cmf: u8 = 0x78;
    // FLG: FLEVEL from the level; FCHECK makes (CMF<<8 | FLG) % 31 == 0.
    let flevel: u8 = match level {
        Level::Store | Level::Fast => 0,
        Level::Default => 2,
        Level::Best => 3,
    };
    let mut flg = flevel << 6;
    let rem = ((cmf as u16) << 8 | flg as u16) % 31;
    if rem != 0 {
        flg += (31 - rem) as u8;
    }
    debug_assert_eq!(((cmf as u16) << 8 | flg as u16) % 31, 0);

    let mut out = vec![cmf, flg];
    out.extend_from_slice(&deflate(data, level));
    out.extend_from_slice(&adler32(data).to_be_bytes());
    out
}

/// Decompress as much of a (possibly truncated) zlib stream as possible,
/// skipping the trailer check — for streaming consumers that inspect data
/// before the stream completes. Header errors still surface once two bytes
/// are available.
pub fn decompress_prefix(data: &[u8]) -> Result<Vec<u8>, ZlibError> {
    if data.len() < 3 {
        return Ok(Vec::new());
    }
    let cmf = data[0];
    let flg = data[1];
    if cmf & 0x0F != 8 || (cmf >> 4) > 7 {
        return Err(ZlibError::BadHeader);
    }
    if ((cmf as u16) << 8 | flg as u16) % 31 != 0 {
        return Err(ZlibError::BadHeaderCheck);
    }
    crate::inflate::inflate_prefix(&data[2..]).map_err(ZlibError::Deflate)
}

/// Decompress a zlib stream.
pub fn decompress(data: &[u8]) -> Result<Vec<u8>, ZlibError> {
    if data.len() < 6 {
        return Err(ZlibError::Truncated);
    }
    let cmf = data[0];
    let flg = data[1];
    if cmf & 0x0F != 8 || (cmf >> 4) > 7 {
        return Err(ZlibError::BadHeader);
    }
    if ((cmf as u16) << 8 | flg as u16) % 31 != 0 {
        return Err(ZlibError::BadHeaderCheck);
    }
    if flg & 0x20 != 0 {
        return Err(ZlibError::NeedsDictionary);
    }
    let body = &data[2..data.len() - 4];
    let decompressed = inflate(body).map_err(ZlibError::Deflate)?;
    let trailer = &data[data.len() - 4..];
    let expect = u32::from_be_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
    if adler32(&decompressed) != expect {
        return Err(ZlibError::BadChecksum);
    }
    Ok(decompressed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_levels() {
        let data = b"zlib container roundtrip test data ".repeat(50);
        for level in [Level::Store, Level::Fast, Level::Default, Level::Best] {
            let z = compress(&data, level);
            assert_eq!(decompress(&z).unwrap(), data);
        }
    }

    #[test]
    fn header_is_standard() {
        let z = compress(b"x", Level::Default);
        assert_eq!(z[0], 0x78, "CMF: deflate with 32K window");
        assert_eq!(((z[0] as u16) << 8 | z[1] as u16) % 31, 0);
    }

    #[test]
    fn corrupted_checksum_detected() {
        let mut z = compress(b"checksum matters", Level::Default);
        let n = z.len();
        z[n - 1] ^= 0xFF;
        assert_eq!(decompress(&z).unwrap_err(), ZlibError::BadChecksum);
    }

    #[test]
    fn corrupted_header_detected() {
        let mut z = compress(b"data", Level::Default);
        z[0] = 0x79; // method 9
        assert_eq!(decompress(&z).unwrap_err(), ZlibError::BadHeader);
        let mut z = compress(b"data", Level::Default);
        z[1] ^= 0x01;
        assert_eq!(decompress(&z).unwrap_err(), ZlibError::BadHeaderCheck);
    }

    #[test]
    fn prefix_decompress_streams() {
        let data = b"partial zlib payloads decode as a prefix ".repeat(30);
        let z = compress(&data, Level::Default);
        let partial = decompress_prefix(&z[..z.len() / 2]).unwrap();
        assert!(!partial.is_empty());
        assert_eq!(&data[..partial.len()], &partial[..]);
        assert_eq!(decompress_prefix(&z).unwrap(), data);
        assert_eq!(decompress_prefix(&[]).unwrap(), Vec::<u8>::new());
        assert_eq!(
            decompress_prefix(&[0x79, 0x9C, 1]).unwrap_err(),
            ZlibError::BadHeader
        );
    }

    #[test]
    fn truncated_stream_detected() {
        let z = compress(b"data", Level::Default);
        assert_eq!(decompress(&z[..3]).unwrap_err(), ZlibError::Truncated);
    }
}
