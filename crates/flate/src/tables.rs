//! Shared RFC 1951 constant tables: length/distance code ranges, the
//! code-length alphabet permutation, and fixed Huffman code lengths.

/// Number of literal/length symbols (0–285; 286 and 287 exist only in the
/// fixed-code table and never appear in data).
pub const NUM_LITLEN: usize = 286;
/// Number of distance symbols.
pub const NUM_DIST: usize = 30;
/// End-of-block symbol.
pub const END_OF_BLOCK: u16 = 256;

/// `(extra_bits, base_length)` for length codes 257..=285.
pub const LENGTH_TABLE: [(u32, u16); 29] = [
    (0, 3),
    (0, 4),
    (0, 5),
    (0, 6),
    (0, 7),
    (0, 8),
    (0, 9),
    (0, 10),
    (1, 11),
    (1, 13),
    (1, 15),
    (1, 17),
    (2, 19),
    (2, 23),
    (2, 27),
    (2, 31),
    (3, 35),
    (3, 43),
    (3, 51),
    (3, 59),
    (4, 67),
    (4, 83),
    (4, 99),
    (4, 115),
    (5, 131),
    (5, 163),
    (5, 195),
    (5, 227),
    (0, 258),
];

/// `(extra_bits, base_distance)` for distance codes 0..=29.
pub const DIST_TABLE: [(u32, u16); 30] = [
    (0, 1),
    (0, 2),
    (0, 3),
    (0, 4),
    (1, 5),
    (1, 7),
    (2, 9),
    (2, 13),
    (3, 17),
    (3, 25),
    (4, 33),
    (4, 49),
    (5, 65),
    (5, 97),
    (6, 129),
    (6, 193),
    (7, 257),
    (7, 385),
    (8, 513),
    (8, 769),
    (9, 1025),
    (9, 1537),
    (10, 2049),
    (10, 3073),
    (11, 4097),
    (11, 6145),
    (12, 8193),
    (12, 12289),
    (13, 16385),
    (13, 24577),
];

/// The order in which code-length-code lengths are stored in a dynamic
/// block header (RFC 1951 §3.2.7).
pub const CLC_ORDER: [usize; 19] = [
    16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15,
];

/// Map a match length (3..=258) to `(symbol, extra_bits, extra_value)`.
pub fn length_to_symbol(len: u16) -> (u16, u32, u32) {
    debug_assert!((3..=258).contains(&len));
    // Binary search over base lengths.
    let mut idx = LENGTH_TABLE
        .partition_point(|&(_, base)| base <= len)
        .saturating_sub(1);
    // 258 maps to the dedicated code 285, not 284 + extra.
    if len == 258 {
        idx = 28;
    }
    let (extra, base) = LENGTH_TABLE[idx];
    (257 + idx as u16, extra, (len - base) as u32)
}

/// Map a match distance (1..=32768) to `(symbol, extra_bits, extra_value)`.
pub fn dist_to_symbol(dist: u16) -> (u16, u32, u32) {
    debug_assert!(dist >= 1);
    let idx = DIST_TABLE
        .partition_point(|&(_, base)| base <= dist)
        .saturating_sub(1);
    let (extra, base) = DIST_TABLE[idx];
    (idx as u16, extra, (dist - base) as u32)
}

/// Fixed literal/length code lengths (RFC 1951 §3.2.6), for all 288
/// symbols of the fixed table.
pub fn fixed_litlen_lengths() -> Vec<u32> {
    let mut l = vec![8u32; 288];
    for item in l.iter_mut().take(256).skip(144) {
        *item = 9;
    }
    for item in l.iter_mut().take(280).skip(256) {
        *item = 7;
    }
    l
}

/// Fixed distance code lengths: 32 symbols of 5 bits.
pub fn fixed_dist_lengths() -> Vec<u32> {
    vec![5u32; 32]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_symbol_boundaries() {
        assert_eq!(length_to_symbol(3), (257, 0, 0));
        assert_eq!(length_to_symbol(10), (264, 0, 0));
        assert_eq!(length_to_symbol(11), (265, 1, 0));
        assert_eq!(length_to_symbol(12), (265, 1, 1));
        assert_eq!(length_to_symbol(13), (266, 1, 0));
        assert_eq!(length_to_symbol(257), (284, 5, 30));
        assert_eq!(length_to_symbol(258), (285, 0, 0));
    }

    #[test]
    fn dist_symbol_boundaries() {
        assert_eq!(dist_to_symbol(1), (0, 0, 0));
        assert_eq!(dist_to_symbol(4), (3, 0, 0));
        assert_eq!(dist_to_symbol(5), (4, 1, 0));
        assert_eq!(dist_to_symbol(6), (4, 1, 1));
        assert_eq!(dist_to_symbol(7), (5, 1, 0));
        assert_eq!(dist_to_symbol(24577), (29, 13, 0));
        assert_eq!(dist_to_symbol(32768), (29, 13, 8191));
    }

    #[test]
    fn every_length_roundtrips() {
        for len in 3..=258u16 {
            let (sym, extra, val) = length_to_symbol(len);
            let (bits, base) = LENGTH_TABLE[(sym - 257) as usize];
            assert_eq!(bits, extra);
            assert_eq!(base + val as u16, len, "len {len}");
        }
    }

    #[test]
    fn every_distance_roundtrips() {
        for dist in 1..=32768u32 {
            let (sym, extra, val) = dist_to_symbol(dist.min(32768) as u16);
            let (bits, base) = DIST_TABLE[sym as usize];
            assert_eq!(bits, extra);
            assert_eq!(base as u32 + val, dist, "dist {dist}");
        }
    }

    #[test]
    fn fixed_lengths_shape() {
        let l = fixed_litlen_lengths();
        assert_eq!(l[0], 8);
        assert_eq!(l[143], 8);
        assert_eq!(l[144], 9);
        assert_eq!(l[255], 9);
        assert_eq!(l[256], 7);
        assert_eq!(l[279], 7);
        assert_eq!(l[280], 8);
        assert_eq!(l[287], 8);
        assert_eq!(fixed_dist_lengths().len(), 32);
    }
}
