//! The DEFLATE compressor (RFC 1951).
//!
//! The encoder tokenizes the input with LZ77, then emits it as whichever of
//! the three block types is smallest: stored, fixed-Huffman, or
//! dynamic-Huffman with an RLE-compressed code-length header. The entire
//! input is emitted as a single block, which is near-optimal at the payload
//! sizes of the experiments (tens to hundreds of kilobytes with stable
//! statistics).

use crate::bitio::BitWriter;
use crate::huffman::{assign_codes, build_lengths};
use crate::lz77::{tokenize, Effort, Token};
use crate::tables::{
    dist_to_symbol, fixed_dist_lengths, fixed_litlen_lengths, length_to_symbol, CLC_ORDER,
    END_OF_BLOCK, NUM_DIST, NUM_LITLEN,
};

/// Compression level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Level {
    /// No compression: stored blocks only.
    Store,
    /// Fast: greedy matching, shallow hash chains.
    Fast,
    /// Balanced, comparable to zlib's default level — what the paper used
    /// ("we used the default values for both deflating and inflating").
    #[default]
    Default,
    /// Maximum effort.
    Best,
}

impl Level {
    fn effort(self) -> Option<Effort> {
        match self {
            Level::Store => None,
            Level::Fast => Some(Effort::Fast),
            Level::Default => Some(Effort::Default),
            Level::Best => Some(Effort::Best),
        }
    }
}

/// Compress `data` into a raw DEFLATE stream.
pub fn deflate(data: &[u8], level: Level) -> Vec<u8> {
    let Some(effort) = level.effort() else {
        return store_only(data);
    };
    let tokens = tokenize(data, effort);

    // Symbol frequencies (including the mandatory end-of-block).
    let mut lit_freq = vec![0u32; NUM_LITLEN];
    let mut dist_freq = vec![0u32; NUM_DIST];
    for t in &tokens {
        match *t {
            Token::Literal(b) => lit_freq[b as usize] += 1,
            Token::Match { len, dist } => {
                lit_freq[length_to_symbol(len).0 as usize] += 1;
                dist_freq[dist_to_symbol(dist).0 as usize] += 1;
            }
        }
    }
    lit_freq[END_OF_BLOCK as usize] += 1;

    let dyn_lit_lengths = build_lengths(&lit_freq, 15);
    let dyn_dist_lengths = build_lengths(&dist_freq, 15);

    let fixed_lit = fixed_litlen_lengths();
    let fixed_dist = fixed_dist_lengths();

    // Cost (in bits) of each representation.
    let body_cost = |lit_len: &[u32], dist_len: &[u32]| -> u64 {
        let mut bits = 0u64;
        for (sym, &f) in lit_freq.iter().enumerate() {
            bits += f as u64 * lit_len[sym] as u64;
            if sym > 256 {
                bits += f as u64 * crate::tables::LENGTH_TABLE[sym - 257].0 as u64;
            }
        }
        for (sym, &f) in dist_freq.iter().enumerate() {
            bits += f as u64 * (dist_len[sym] as u64 + crate::tables::DIST_TABLE[sym].0 as u64);
        }
        bits
    };

    let header = build_dynamic_header(&dyn_lit_lengths, &dyn_dist_lengths);
    let dynamic_cost = header.cost_bits + body_cost(&dyn_lit_lengths, &dyn_dist_lengths);
    let fixed_cost = body_cost(&fixed_lit, &fixed_dist);
    // Stored: 3 bits + align + per-64K-chunk 4-byte length header + data.
    let stored_cost = 8 + (data.len() as u64).div_ceil(65_535) * 40 + data.len() as u64 * 8;

    let mut w = BitWriter::new();
    if stored_cost < dynamic_cost.min(fixed_cost) {
        return store_only(data);
    }
    if fixed_cost <= dynamic_cost {
        w.write_bits(1, 1); // BFINAL
        w.write_bits(0b01, 2); // fixed
        emit_body(&mut w, &tokens, &fixed_lit, &fixed_dist);
    } else {
        w.write_bits(1, 1);
        w.write_bits(0b10, 2); // dynamic
        header.emit(&mut w);
        emit_body(&mut w, &tokens, &dyn_lit_lengths, &dyn_dist_lengths);
    }
    w.finish()
}

fn store_only(data: &[u8]) -> Vec<u8> {
    let mut w = BitWriter::new();
    let mut chunks: Vec<&[u8]> = data.chunks(65_535).collect();
    if chunks.is_empty() {
        chunks.push(&[]);
    }
    let last = chunks.len() - 1;
    for (i, chunk) in chunks.iter().enumerate() {
        w.write_bits(u32::from(i == last), 1); // BFINAL
        w.write_bits(0b00, 2); // stored
        w.align_byte();
        let len = chunk.len() as u16;
        w.write_bits(len as u32, 16);
        w.write_bits(!len as u32, 16);
        w.write_bytes(chunk);
    }
    w.finish()
}

fn emit_body(w: &mut BitWriter, tokens: &[Token], lit_len: &[u32], dist_len: &[u32]) {
    let lit_codes = assign_codes(lit_len);
    let dist_codes = assign_codes(dist_len);
    for t in tokens {
        match *t {
            Token::Literal(b) => {
                w.write_code(lit_codes[b as usize], lit_len[b as usize]);
            }
            Token::Match { len, dist } => {
                let (lsym, lextra, lval) = length_to_symbol(len);
                w.write_code(lit_codes[lsym as usize], lit_len[lsym as usize]);
                if lextra > 0 {
                    w.write_bits(lval, lextra);
                }
                let (dsym, dextra, dval) = dist_to_symbol(dist);
                w.write_code(dist_codes[dsym as usize], dist_len[dsym as usize]);
                if dextra > 0 {
                    w.write_bits(dval, dextra);
                }
            }
        }
    }
    w.write_code(
        lit_codes[END_OF_BLOCK as usize],
        lit_len[END_OF_BLOCK as usize],
    );
}

/// The dynamic block header: HLIT/HDIST/HCLEN plus the RLE-coded code
/// lengths (RFC 1951 §3.2.7).
struct DynamicHeader {
    hlit: u32,
    hdist: u32,
    hclen: u32,
    clc_lengths: Vec<u32>,
    /// RLE symbols: (symbol, extra_bits, extra_value).
    rle: Vec<(u16, u32, u32)>,
    cost_bits: u64,
}

impl DynamicHeader {
    fn emit(&self, w: &mut BitWriter) {
        w.write_bits(self.hlit - 257, 5);
        w.write_bits(self.hdist - 1, 5);
        w.write_bits(self.hclen - 4, 4);
        for &ord in &CLC_ORDER[..self.hclen as usize] {
            w.write_bits(self.clc_lengths[ord], 3);
        }
        let clc_codes = assign_codes(&self.clc_lengths);
        for &(sym, extra, val) in &self.rle {
            w.write_code(clc_codes[sym as usize], self.clc_lengths[sym as usize]);
            if extra > 0 {
                w.write_bits(val, extra);
            }
        }
    }
}

/// Run-length encode the concatenated code lengths with symbols 16/17/18.
fn rle_code_lengths(lengths: &[u32]) -> Vec<(u16, u32, u32)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < lengths.len() {
        let v = lengths[i];
        let mut run = 1;
        while i + run < lengths.len() && lengths[i + run] == v {
            run += 1;
        }
        if v == 0 {
            let mut remaining = run;
            while remaining >= 3 {
                if remaining >= 11 {
                    let take = remaining.min(138);
                    out.push((18, 7, (take - 11) as u32));
                    remaining -= take;
                } else {
                    let take = remaining.min(10);
                    out.push((17, 3, (take - 3) as u32));
                    remaining -= take;
                }
            }
            for _ in 0..remaining {
                out.push((0, 0, 0));
            }
        } else {
            // Emit the first occurrence literally, then repeats with 16.
            out.push((v as u16, 0, 0));
            let mut remaining = run - 1;
            while remaining >= 3 {
                let take = remaining.min(6);
                out.push((16, 2, (take - 3) as u32));
                remaining -= take;
            }
            for _ in 0..remaining {
                out.push((v as u16, 0, 0));
            }
        }
        i += run;
    }
    out
}

fn build_dynamic_header(lit_lengths: &[u32], dist_lengths: &[u32]) -> DynamicHeader {
    // Trim trailing zero lengths, respecting the minimum counts.
    let hlit = (257..=NUM_LITLEN)
        .rev()
        .find(|&n| n == 257 || lit_lengths[n - 1] != 0)
        .unwrap_or(257);
    let hdist = (1..=NUM_DIST)
        .rev()
        .find(|&n| n == 1 || dist_lengths[n - 1] != 0)
        .unwrap_or(1);

    let mut all = Vec::with_capacity(hlit + hdist);
    all.extend_from_slice(&lit_lengths[..hlit]);
    all.extend_from_slice(&dist_lengths[..hdist]);
    let rle = rle_code_lengths(&all);

    // Frequencies of the code-length alphabet.
    let mut clc_freq = vec![0u32; 19];
    for &(sym, _, _) in &rle {
        clc_freq[sym as usize] += 1;
    }
    let clc_lengths = build_lengths(&clc_freq, 7);

    let hclen = (4..=19)
        .rev()
        .find(|&n| n == 4 || clc_lengths[CLC_ORDER[n - 1]] != 0)
        .unwrap_or(4);

    let mut cost: u64 = 5 + 5 + 4 + 3 * hclen as u64;
    for &(sym, extra, _) in &rle {
        cost += clc_lengths[sym as usize] as u64 + extra as u64;
    }

    DynamicHeader {
        hlit: hlit as u32,
        hdist: hdist as u32,
        hclen: hclen as u32,
        clc_lengths,
        rle,
        cost_bits: cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inflate::inflate;

    fn roundtrip(data: &[u8], level: Level) -> usize {
        let compressed = deflate(data, level);
        let restored = inflate(&compressed).expect("inflate");
        assert_eq!(restored, data, "roundtrip failed at {level:?}");
        compressed.len()
    }

    #[test]
    fn empty_input() {
        for level in [Level::Store, Level::Fast, Level::Default, Level::Best] {
            roundtrip(b"", level);
        }
    }

    #[test]
    fn short_strings() {
        for level in [Level::Store, Level::Fast, Level::Default, Level::Best] {
            roundtrip(b"a", level);
            roundtrip(b"hello world", level);
            roundtrip(b"aaaaaaaaaaaaaaaaaaaaaaaaaaa", level);
        }
    }

    #[test]
    fn stored_block_used_for_incompressible() {
        let mut x = 0xDEADBEEFu64;
        let data: Vec<u8> = (0..1000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                (x >> 33) as u8
            })
            .collect();
        let n = roundtrip(&data, Level::Default);
        // Random bytes: compressed form must not exceed stored size by
        // more than the tiny block header.
        assert!(n <= data.len() + 16, "{n} vs {}", data.len());
    }

    #[test]
    fn html_compresses_about_3x() {
        // Mimic the paper's Microscape HTML: ~42 KB of tag-heavy markup
        // compressed "more than a factor of three".
        let mut html = String::from("<html><head><title>Microscape</title></head><body>\n");
        for i in 0..420 {
            html.push_str(&format!(
                "<table border=0 cellpadding=0 cellspacing=0 width=600><tr>\
                 <td align=left valign=top><a href=\"/item/{i}.html\">\
                 <img src=\"/images/item{i}.gif\" width=100 height=30 border=0 \
                 alt=\"item {i}\"></a></td></tr></table>\n"
            ));
        }
        html.push_str("</body></html>\n");
        let n = roundtrip(html.as_bytes(), Level::Default);
        let ratio = n as f64 / html.len() as f64;
        assert!(
            ratio < 0.33,
            "HTML should compress >3x, got ratio {ratio:.3} ({n}/{})",
            html.len()
        );
    }

    #[test]
    fn large_repetitive_input() {
        let data = b"0123456789".repeat(20_000); // 200 KB
        let n = roundtrip(&data, Level::Default);
        assert!(n < 2_000);
    }

    #[test]
    fn all_byte_values() {
        let data: Vec<u8> = (0..=255u8).cycle().take(65_536 * 2 + 17).collect();
        roundtrip(&data, Level::Default);
        roundtrip(&data, Level::Store);
    }

    #[test]
    fn store_level_multi_chunk() {
        let data = vec![7u8; 70_000]; // spans two stored chunks
        let out = deflate(&data, Level::Store);
        assert_eq!(inflate(&out).unwrap(), data);
    }

    #[test]
    fn levels_order_sensibly() {
        let mut text = String::new();
        for i in 0..3000 {
            text.push_str(&format!("the {} quick {} brown fox\n", i % 7, i % 31));
        }
        let fast = deflate(text.as_bytes(), Level::Fast).len();
        let best = deflate(text.as_bytes(), Level::Best).len();
        assert!(best <= fast);
    }

    #[test]
    fn rle_of_code_lengths() {
        let lengths = [0u32; 20];
        let rle = rle_code_lengths(&lengths);
        // 20 zeros = one 18-symbol (11-138 range covers all 20).
        assert_eq!(rle, vec![(18, 7, 9)]);

        let lengths = [5u32, 5, 5, 5, 5];
        let rle = rle_code_lengths(&lengths);
        assert_eq!(rle, vec![(5, 0, 0), (16, 2, 1)]); // 5, then repeat 4x

        let lengths = [4u32, 0, 0];
        let rle = rle_code_lengths(&lengths);
        assert_eq!(rle, vec![(4, 0, 0), (0, 0, 0), (0, 0, 0)]);
    }
}
