//! The DEFLATE decompressor (RFC 1951).

use crate::bitio::{BitReader, UnexpectedEof};
use crate::huffman::{Decoder, HuffError};
use crate::tables::{
    fixed_dist_lengths, fixed_litlen_lengths, CLC_ORDER, DIST_TABLE, LENGTH_TABLE,
};

/// Errors the decompressor can report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InflateError {
    /// Input ended before the final block completed.
    UnexpectedEof,
    /// Reserved block type 0b11.
    BadBlockType,
    /// Stored block LEN/NLEN mismatch.
    BadStoredLength,
    /// Invalid Huffman table in a dynamic header.
    BadHuffmanTable,
    /// A code read from the stream does not exist in the table.
    BadCode,
    /// A back-reference points before the start of output.
    BadDistance,
    /// A length/distance symbol outside the valid range.
    BadSymbol,
}

impl From<UnexpectedEof> for InflateError {
    fn from(_: UnexpectedEof) -> Self {
        InflateError::UnexpectedEof
    }
}

impl std::fmt::Display for InflateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            InflateError::UnexpectedEof => "unexpected end of input",
            InflateError::BadBlockType => "reserved block type",
            InflateError::BadStoredLength => "stored block length check failed",
            InflateError::BadHuffmanTable => "invalid huffman table",
            InflateError::BadCode => "invalid huffman code in stream",
            InflateError::BadDistance => "back-reference before start of output",
            InflateError::BadSymbol => "symbol out of range",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for InflateError {}

/// Decompress as much of a (possibly truncated) DEFLATE stream as
/// possible. Used for *streaming* consumers — e.g. a browser parsing
/// compressed HTML while it is still arriving — where a truncated tail is
/// expected, not an error. Errors other than truncation still surface.
pub fn inflate_prefix(data: &[u8]) -> Result<Vec<u8>, InflateError> {
    inflate_inner(data, true)
}

/// Decompress a raw DEFLATE stream.
pub fn inflate(data: &[u8]) -> Result<Vec<u8>, InflateError> {
    inflate_inner(data, false)
}

fn inflate_inner(data: &[u8], tolerate_eof: bool) -> Result<Vec<u8>, InflateError> {
    let mut r = BitReader::new(data);
    let mut out = Vec::new();
    let result = (|| -> Result<(), InflateError> {
        loop {
            let bfinal = r.read_bit()?;
            let btype = r.read_bits(2)?;
            match btype {
                0b00 => stored_block(&mut r, &mut out)?,
                0b01 => {
                    let lit = Decoder::new(&fixed_litlen_lengths())
                        .map_err(|_| InflateError::BadHuffmanTable)?;
                    let dist = Decoder::new(&fixed_dist_lengths())
                        .map_err(|_| InflateError::BadHuffmanTable)?;
                    huffman_block(&mut r, &mut out, &lit, &dist)?;
                }
                0b10 => {
                    let (lit, dist) = dynamic_tables(&mut r)?;
                    huffman_block(&mut r, &mut out, &lit, &dist)?;
                }
                _ => return Err(InflateError::BadBlockType),
            }
            if bfinal == 1 {
                return Ok(());
            }
        }
    })();
    match result {
        Ok(()) => Ok(out),
        Err(InflateError::UnexpectedEof) if tolerate_eof => Ok(out),
        Err(e) => Err(e),
    }
}

fn stored_block(r: &mut BitReader<'_>, out: &mut Vec<u8>) -> Result<(), InflateError> {
    r.align_byte();
    let len = r.read_bits(16)? as u16;
    let nlen = r.read_bits(16)? as u16;
    if len != !nlen {
        return Err(InflateError::BadStoredLength);
    }
    let bytes = r.read_bytes(len as usize)?;
    out.extend_from_slice(&bytes);
    Ok(())
}

fn decode_symbol(r: &mut BitReader<'_>, dec: &Decoder) -> Result<u16, InflateError> {
    match dec.decode(|| r.read_bit())? {
        Ok(sym) => Ok(sym),
        Err(HuffError::BadCode) => Err(InflateError::BadCode),
        Err(_) => Err(InflateError::BadHuffmanTable),
    }
}

fn dynamic_tables(r: &mut BitReader<'_>) -> Result<(Decoder, Decoder), InflateError> {
    let hlit = r.read_bits(5)? as usize + 257;
    let hdist = r.read_bits(5)? as usize + 1;
    let hclen = r.read_bits(4)? as usize + 4;
    if hlit > 286 || hdist > 30 {
        return Err(InflateError::BadHuffmanTable);
    }

    let mut clc_lengths = vec![0u32; 19];
    for i in 0..hclen {
        clc_lengths[CLC_ORDER[i]] = r.read_bits(3)?;
    }
    let clc = Decoder::new(&clc_lengths).map_err(|_| InflateError::BadHuffmanTable)?;

    let total = hlit + hdist;
    let mut lengths = Vec::with_capacity(total);
    while lengths.len() < total {
        let sym = decode_symbol(r, &clc)?;
        match sym {
            0..=15 => lengths.push(sym as u32),
            16 => {
                let &prev = lengths.last().ok_or(InflateError::BadHuffmanTable)?;
                let rep = r.read_bits(2)? + 3;
                for _ in 0..rep {
                    lengths.push(prev);
                }
            }
            17 => {
                let rep = r.read_bits(3)? + 3;
                lengths.resize(lengths.len() + rep as usize, 0);
            }
            18 => {
                let rep = r.read_bits(7)? + 11;
                lengths.resize(lengths.len() + rep as usize, 0);
            }
            _ => return Err(InflateError::BadSymbol),
        }
    }
    if lengths.len() != total {
        return Err(InflateError::BadHuffmanTable);
    }

    let lit = Decoder::new(&lengths[..hlit]).map_err(|_| InflateError::BadHuffmanTable)?;
    // An empty distance table is legal when the block has no matches; use a
    // single-symbol placeholder in that case.
    let dist_lengths = &lengths[hlit..];
    let dist = match Decoder::new(dist_lengths) {
        Ok(d) => d,
        Err(HuffError::Empty) => Decoder::new(&[1]).unwrap(),
        Err(_) => return Err(InflateError::BadHuffmanTable),
    };
    Ok((lit, dist))
}

fn huffman_block(
    r: &mut BitReader<'_>,
    out: &mut Vec<u8>,
    lit: &Decoder,
    dist: &Decoder,
) -> Result<(), InflateError> {
    loop {
        let sym = decode_symbol(r, lit)?;
        match sym {
            0..=255 => out.push(sym as u8),
            256 => return Ok(()),
            257..=285 => {
                let (extra, base) = LENGTH_TABLE[(sym - 257) as usize];
                let len = base as usize + r.read_bits(extra)? as usize;

                let dsym = decode_symbol(r, dist)?;
                if dsym as usize >= DIST_TABLE.len() {
                    return Err(InflateError::BadSymbol);
                }
                let (dextra, dbase) = DIST_TABLE[dsym as usize];
                let d = dbase as usize + r.read_bits(dextra)? as usize;
                if d > out.len() {
                    return Err(InflateError::BadDistance);
                }
                let start = out.len() - d;
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            }
            _ => return Err(InflateError::BadSymbol),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deflate::{deflate, Level};

    #[test]
    fn known_fixed_block() {
        // A canonical fixed-Huffman block for "abc" produced by zlib:
        // literals 'a'(0x61): code 0x91 len 8, etc. Easier: roundtrip
        // against our encoder is covered elsewhere; here decode a
        // hand-assembled stored block.
        let raw = [0x01u8, 0x03, 0x00, 0xFC, 0xFF, b'a', b'b', b'c'];
        assert_eq!(inflate(&raw).unwrap(), b"abc");
    }

    #[test]
    fn truncated_input_errors() {
        let ok = deflate(b"hello hello hello hello", Level::Default);
        for cut in 0..ok.len() {
            let err = inflate(&ok[..cut]);
            assert!(err.is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn bad_block_type() {
        // BFINAL=1, BTYPE=11.
        let raw = [0b0000_0111u8];
        assert_eq!(inflate(&raw).unwrap_err(), InflateError::BadBlockType);
    }

    #[test]
    fn bad_stored_nlen() {
        let raw = [0x01u8, 0x03, 0x00, 0x00, 0x00, b'a', b'b', b'c'];
        assert_eq!(inflate(&raw).unwrap_err(), InflateError::BadStoredLength);
    }

    #[test]
    fn distance_before_start_rejected() {
        // Build a fixed block whose first symbol is a match — invalid.
        use crate::bitio::BitWriter;
        use crate::huffman::assign_codes;
        use crate::tables::fixed_litlen_lengths;
        let lens = fixed_litlen_lengths();
        let codes = assign_codes(&lens);
        let mut w = BitWriter::new();
        w.write_bits(1, 1);
        w.write_bits(0b01, 2);
        // Length symbol 257 (len 3), distance symbol 0 (dist 1) into empty
        // output.
        w.write_code(codes[257], lens[257]);
        w.write_code(0, 5);
        let raw = w.finish();
        assert_eq!(inflate(&raw).unwrap_err(), InflateError::BadDistance);
    }

    #[test]
    fn empty_stream_is_eof() {
        assert_eq!(inflate(&[]).unwrap_err(), InflateError::UnexpectedEof);
    }

    #[test]
    fn prefix_inflation_yields_partial_output() {
        let text = b"the leading text is recoverable from a prefix ".repeat(40);
        let full = deflate(&text, Level::Default);
        // Feeding ~60% of the compressed stream must reproduce a healthy
        // prefix of the original.
        let cut = full.len() * 6 / 10;
        let partial = inflate_prefix(&full[..cut]).unwrap();
        assert!(!partial.is_empty());
        assert!(partial.len() < text.len());
        assert_eq!(&text[..partial.len()], &partial[..]);
        // The complete stream still roundtrips through the same path.
        assert_eq!(inflate_prefix(&full).unwrap(), text);
        // Non-EOF corruption still errors.
        assert!(inflate_prefix(&[0b0000_0111u8]).is_err());
    }
}
