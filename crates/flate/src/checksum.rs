//! Adler-32 (RFC 1950) and CRC-32 (ISO 3309, as used by PNG) checksums.

/// Incremental Adler-32, the checksum of the zlib format.
#[derive(Debug, Clone, Copy)]
pub struct Adler32 {
    a: u32,
    b: u32,
}

const ADLER_MOD: u32 = 65_521;

impl Default for Adler32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Adler32 {
    /// Create a new, empty instance.
    pub fn new() -> Self {
        Adler32 { a: 1, b: 0 }
    }

    /// Feed more bytes into the running computation.
    pub fn update(&mut self, data: &[u8]) {
        // Defer the modulo: 5552 is the largest n with no u32 overflow.
        for chunk in data.chunks(5552) {
            for &byte in chunk {
                self.a += byte as u32;
                self.b += self.a;
            }
            self.a %= ADLER_MOD;
            self.b %= ADLER_MOD;
        }
    }

    /// Finalize and return the computed value.
    pub fn finish(self) -> u32 {
        (self.b << 16) | self.a
    }
}

/// One-shot Adler-32.
pub fn adler32(data: &[u8]) -> u32 {
    let mut a = Adler32::new();
    a.update(data);
    a.finish()
}

/// Incremental CRC-32 (polynomial 0xEDB88320), PNG's chunk checksum.
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

fn crc_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (n, entry) in table.iter_mut().enumerate() {
            let mut c = n as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        table
    })
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Create a new, empty instance.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feed more bytes into the running computation.
    pub fn update(&mut self, data: &[u8]) {
        let table = crc_table();
        for &byte in data {
            self.state = table[((self.state ^ byte as u32) & 0xFF) as usize] ^ (self.state >> 8);
        }
    }

    /// Finalize and return the computed value.
    pub fn finish(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adler_known_vectors() {
        // From RFC 1950 definitions.
        assert_eq!(adler32(b""), 1);
        assert_eq!(adler32(b"a"), 0x0062_0062);
        assert_eq!(adler32(b"abc"), 0x024d_0127);
        assert_eq!(adler32(b"Wikipedia"), 0x11E6_0398);
    }

    #[test]
    fn adler_incremental_matches_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog".repeat(100);
        let mut inc = Adler32::new();
        for chunk in data.chunks(7) {
            inc.update(chunk);
        }
        assert_eq!(inc.finish(), adler32(&data));
    }

    #[test]
    fn crc_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"IEND"), 0xAE42_6082); // PNG's empty IEND chunk CRC
    }

    #[test]
    fn crc_incremental_matches_oneshot() {
        let data: Vec<u8> = (0..1000).map(|i| (i * 7 % 256) as u8).collect();
        let mut inc = Crc32::new();
        for chunk in data.chunks(13) {
            inc.update(chunk);
        }
        assert_eq!(inc.finish(), crc32(&data));
    }
}
