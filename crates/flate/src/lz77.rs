//! LZ77 match finding with hash chains, in the style of zlib's deflate.

/// DEFLATE's sliding window.
pub const WINDOW_SIZE: usize = 32 * 1024;
/// Minimum and maximum back-reference match lengths.
pub const MIN_MATCH: usize = 3;
/// Maximum back-reference match length.
pub const MAX_MATCH: usize = 258;

const HASH_BITS: u32 = 15;
const HASH_SIZE: usize = 1 << HASH_BITS;

/// One element of the LZ77 token stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Token {
    /// A single uncompressed byte.
    Literal(u8),
    /// A back-reference: copy `len` bytes from `dist` bytes back.
    Match {
        /// Match length (3..=258).
        len: u16,
        /// Backwards distance (1..=32768).
        dist: u16,
    },
}

/// Effort levels, mirroring zlib's level → (chain depth, lazy threshold)
/// mapping in spirit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Effort {
    /// Greedy with shallow chains; fastest.
    Fast,
    /// Lazy matching with moderate chains (zlib level ~6).
    Default,
    /// Deep chains (zlib level ~9).
    Best,
}

impl Effort {
    fn max_chain(self) -> usize {
        match self {
            Effort::Fast => 16,
            Effort::Default => 128,
            Effort::Best => 1024,
        }
    }

    fn lazy(self) -> bool {
        !matches!(self, Effort::Fast)
    }

    /// Matches at least this long are taken immediately (no lazy probe).
    fn good_enough(self) -> usize {
        match self {
            Effort::Fast => 16,
            Effort::Default => 64,
            Effort::Best => 258,
        }
    }
}

fn hash(data: &[u8], i: usize) -> usize {
    let h = (data[i] as u32)
        .wrapping_mul(0x9E37)
        .wrapping_add((data[i + 1] as u32).wrapping_mul(0x79B9))
        .wrapping_add((data[i + 2] as u32).wrapping_mul(0x0103));
    (h as usize) & (HASH_SIZE - 1)
}

fn match_len(data: &[u8], a: usize, b: usize, max: usize) -> usize {
    let mut n = 0;
    while n < max && data[a + n] == data[b + n] {
        n += 1;
    }
    n
}

/// Tokenize `data` into literals and back-references.
pub fn tokenize(data: &[u8], effort: Effort) -> Vec<Token> {
    let mut tokens = Vec::with_capacity(data.len() / 3 + 16);
    if data.len() < MIN_MATCH {
        tokens.extend(data.iter().map(|&b| Token::Literal(b)));
        return tokens;
    }

    // head[h] = most recent position with hash h (+1, 0 = none);
    // prev[i & mask] = previous position in the chain.
    let mut head = vec![0u32; HASH_SIZE];
    let mut prev = vec![0u32; WINDOW_SIZE];
    let mask = WINDOW_SIZE - 1;

    let insert = |head: &mut [u32], prev: &mut [u32], data: &[u8], i: usize| {
        if i + MIN_MATCH <= data.len() {
            let h = hash(data, i);
            prev[i & mask] = head[h];
            head[h] = (i + 1) as u32;
        }
    };

    let find_best = |head: &[u32], prev: &[u32], data: &[u8], i: usize, effort: Effort| {
        let max = MAX_MATCH.min(data.len() - i);
        if max < MIN_MATCH || i + MIN_MATCH > data.len() {
            return None;
        }
        let h = hash(data, i);
        let mut cand = head[h];
        let mut best_len = MIN_MATCH - 1;
        let mut best_dist = 0usize;
        let mut chain = effort.max_chain();
        while cand != 0 && chain > 0 {
            let j = (cand - 1) as usize;
            if j >= i || i - j > WINDOW_SIZE {
                break;
            }
            // Quick reject: check the byte that would extend the best match.
            if data[j + best_len] == data[i + best_len] {
                let l = match_len(data, j, i, max);
                if l > best_len {
                    best_len = l;
                    best_dist = i - j;
                    if l >= max {
                        break;
                    }
                }
            }
            cand = prev[j & mask];
            chain -= 1;
        }
        if best_len >= MIN_MATCH {
            Some((best_len, best_dist))
        } else {
            None
        }
    };

    let mut i = 0;
    while i < data.len() {
        let found = find_best(&head, &prev, data, i, effort);
        match found {
            None => {
                tokens.push(Token::Literal(data[i]));
                insert(&mut head, &mut prev, data, i);
                i += 1;
            }
            Some((len, dist)) => {
                // Lazy evaluation: would starting one byte later yield a
                // strictly longer match?
                let mut take = (len, dist, i);
                if effort.lazy() && len < effort.good_enough() && i + 1 < data.len() {
                    insert(&mut head, &mut prev, data, i);
                    if let Some((len2, dist2)) = find_best(&head, &prev, data, i + 1, effort) {
                        if len2 > len {
                            tokens.push(Token::Literal(data[i]));
                            take = (len2, dist2, i + 1);
                        }
                    }
                    let (tlen, tdist, ti) = take;
                    tokens.push(Token::Match {
                        len: tlen as u16,
                        dist: tdist as u16,
                    });
                    // Insert positions covered by the match (we already
                    // inserted position i above).
                    let start = i + 1;
                    for k in start..ti + tlen {
                        insert(&mut head, &mut prev, data, k);
                    }
                    i = ti + tlen;
                } else {
                    tokens.push(Token::Match {
                        len: len as u16,
                        dist: dist as u16,
                    });
                    for k in i..i + len {
                        insert(&mut head, &mut prev, data, k);
                    }
                    i += len;
                }
            }
        }
    }
    tokens
}

/// Reconstruct the original bytes from a token stream (used by tests and by
/// property checks; the real decompressor works from the bit stream).
pub fn detokenize(tokens: &[Token]) -> Vec<u8> {
    let mut out = Vec::new();
    for t in tokens {
        match *t {
            Token::Literal(b) => out.push(b),
            Token::Match { len, dist } => {
                let start = out.len() - dist as usize;
                for k in 0..len as usize {
                    let b = out[start + k];
                    out.push(b);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8], effort: Effort) {
        let tokens = tokenize(data, effort);
        assert_eq!(detokenize(&tokens), data);
    }

    #[test]
    fn empty_and_tiny() {
        roundtrip(b"", Effort::Default);
        roundtrip(b"a", Effort::Default);
        roundtrip(b"ab", Effort::Default);
        roundtrip(b"abc", Effort::Default);
    }

    #[test]
    fn repeated_text_produces_matches() {
        let data = b"abcabcabcabcabcabc";
        let tokens = tokenize(data, Effort::Default);
        assert!(
            tokens.iter().any(|t| matches!(t, Token::Match { .. })),
            "tokens: {tokens:?}"
        );
        assert_eq!(detokenize(&tokens), data);
    }

    #[test]
    fn overlapping_match_rle() {
        // "aaaa..." compresses as one literal + one overlapping match.
        let data = vec![b'a'; 300];
        let tokens = tokenize(&data, Effort::Default);
        assert_eq!(detokenize(&tokens), data);
        assert!(tokens.len() <= 4, "RLE should be compact: {}", tokens.len());
    }

    #[test]
    fn all_efforts_roundtrip() {
        let mut data = Vec::new();
        for i in 0..5000u32 {
            data.extend_from_slice(format!("line {} of the test corpus\n", i % 97).as_bytes());
        }
        for effort in [Effort::Fast, Effort::Default, Effort::Best] {
            roundtrip(&data, effort);
        }
    }

    #[test]
    fn better_effort_not_worse() {
        let mut data = Vec::new();
        for i in 0..2000u32 {
            data.extend_from_slice(format!("<TD ALIGN={}>", i % 13).as_bytes());
        }
        let fast = tokenize(&data, Effort::Fast).len();
        let best = tokenize(&data, Effort::Best).len();
        assert!(best <= fast, "best {best} vs fast {fast}");
    }

    #[test]
    fn max_match_length_respected() {
        let data = vec![b'x'; 4096];
        for t in tokenize(&data, Effort::Best) {
            if let Token::Match { len, .. } = t {
                assert!(len as usize <= MAX_MATCH);
                assert!(len as usize >= MIN_MATCH);
            }
        }
    }

    #[test]
    fn binary_data_roundtrip() {
        let mut x = 1u64;
        let data: Vec<u8> = (0..10_000)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 33) as u8
            })
            .collect();
        roundtrip(&data, Effort::Default);
    }
}
