//! # flate — a from-scratch DEFLATE / zlib implementation
//!
//! The paper's transport-compression experiments use zlib 1.04 with default
//! settings ("Content-Encoding: deflate", which per RFC 2068 is the zlib
//! container around a DEFLATE stream). This crate implements both formats
//! from scratch:
//!
//! * [`deflate()`] / [`inflate()`] — raw RFC 1951 streams (stored, fixed
//!   and dynamic Huffman blocks, LZ77 with lazy matching);
//! * [`zlib::compress`] / [`zlib::decompress`] — the RFC 1950 container
//!   with Adler-32 integrity checking;
//! * [`checksum`] — Adler-32 and CRC-32 (the latter shared with the PNG
//!   codec in `webcontent`).
//!
//! The paper's observations this crate reproduces directly:
//! * HTML compresses "more than a factor of three" at the default level;
//! * all-lowercase HTML tags compress noticeably better than mixed-case
//!   tags (ratio ≈ 0.27 vs ≈ 0.35) because the dictionary can reuse common
//!   English words.
//!
//! ```
//! use flate::{deflate, inflate, Level};
//! let html = "<p class=banner> solutions</p>".repeat(100);
//! let small = deflate(html.as_bytes(), Level::Default);
//! assert!(small.len() < html.len() / 3);
//! assert_eq!(inflate(&small).unwrap(), html.as_bytes());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitio;
pub mod checksum;
pub mod deflate;
pub mod huffman;
pub mod inflate;
pub mod lz77;
pub mod tables;
pub mod zlib;

pub use checksum::{adler32, crc32, Adler32, Crc32};
pub use deflate::{deflate, Level};
pub use inflate::{inflate, InflateError};
pub use zlib::ZlibError;
